#include "baseline/nested_loop_join.h"
#include "baseline/nn_semi_join.h"
#include "baseline/within_join.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "data/generators.h"
#include "join_test_util.h"

namespace sdj::baseline {
namespace {

using test::BruteForcePairs;
using test::BruteForceSemiDistances;
using test::BuildPointTree;

std::vector<Point<2>> PointsA(size_t n = 150, uint64_t seed = 201) {
  return data::GenerateUniform(n, Rect<2>({0, 0}, {500, 500}), seed);
}
std::vector<Point<2>> PointsB(size_t n = 200, uint64_t seed = 202) {
  data::ClusterOptions options;
  options.num_points = n;
  options.extent = Rect<2>({0, 0}, {500, 500});
  options.num_clusters = 5;
  options.seed = seed;
  return data::GenerateClustered(options);
}

std::vector<RTree<2>::Entry> ToEntries(const std::vector<Point<2>>& points) {
  std::vector<RTree<2>::Entry> entries;
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back({Rect<2>::FromPoint(points[i]), i});
  }
  return entries;
}

TEST(NestedLoopDistanceJoin, TopKMatchesBruteForce) {
  const auto a = PointsA();
  const auto b = PointsB();
  const auto reference = BruteForcePairs(a, b);
  NestedLoopDistanceJoin<2> nl(ToEntries(a), ToEntries(b));
  const auto got = nl.TopK(100);
  ASSERT_EQ(got.size(), 100u);
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance, reference[k].distance, 1e-9) << k;
  }
  EXPECT_EQ(nl.distance_calcs(), a.size() * b.size());
}

TEST(NestedLoopDistanceJoin, TopKWithMaxDistance) {
  const auto a = PointsA(80, 203);
  const auto b = PointsB(90, 204);
  const auto reference = BruteForcePairs(a, b);
  const double dmax = reference[200].distance;
  NestedLoopDistanceJoin<2> nl(ToEntries(a), ToEntries(b));
  const auto got = nl.TopK(1000, dmax);
  for (const auto& r : got) EXPECT_LE(r.distance, dmax);
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance <= dmax) ++expected;
  }
  EXPECT_EQ(got.size(), std::min<size_t>(expected, 1000));
}

TEST(NestedLoopDistanceJoin, TopKLargerThanProductReturnsEverything) {
  const auto a = PointsA(20, 205);
  const auto b = PointsB(25, 206);
  NestedLoopDistanceJoin<2> nl(ToEntries(a), ToEntries(b));
  EXPECT_EQ(nl.TopK(10000).size(), 20u * 25u);
}

TEST(NestedLoopDistanceJoin, AllWithinSortedAndComplete) {
  const auto a = PointsA(60, 207);
  const auto b = PointsB(70, 208);
  const auto reference = BruteForcePairs(a, b);
  const double dmax = reference[800].distance;
  NestedLoopDistanceJoin<2> nl(ToEntries(a), ToEntries(b));
  const auto got = nl.AllWithin(dmax);
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance <= dmax) ++expected;
  }
  ASSERT_EQ(got.size(), expected);
  for (size_t k = 1; k < got.size(); ++k) {
    ASSERT_GE(got[k].distance, got[k - 1].distance);
  }
}

TEST(NestedLoopDistanceJoin, ScanAllCountsEveryPair) {
  const auto a = PointsA(30, 209);
  const auto b = PointsB(40, 210);
  NestedLoopDistanceJoin<2> nl(ToEntries(a), ToEntries(b));
  const double sum = nl.ScanAllDistances();
  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(nl.distance_calcs(), 30u * 40u);
}

TEST(NestedLoopDistanceJoin, MaterializeReadsWholeTree) {
  const auto a = PointsA(120, 211);
  RTree<2> tree = BuildPointTree(a);
  const auto entries = NestedLoopDistanceJoin<2>::Materialize(tree);
  EXPECT_EQ(entries.size(), a.size());
  std::set<ObjectId> ids;
  for (const auto& e : entries) ids.insert(e.id);
  EXPECT_EQ(ids.size(), a.size());
}

TEST(NnSemiJoin, MatchesIncrementalSemiJoin) {
  const auto a = PointsA(120, 213);
  const auto b = PointsB(150, 214);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto expected = BruteForceSemiDistances(a, b);

  NnSemiJoinStats stats;
  const auto got = NnSemiJoin(ta, tb, Metric::kEuclidean, &stats);
  ASSERT_EQ(got.size(), a.size());
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance, expected[k], 1e-9) << k;
  }
  EXPECT_EQ(stats.nn_queries, a.size());
  EXPECT_GT(stats.distance_calcs, 0u);
}

TEST(NnSemiJoin, AgreesWithIncrementalAlgorithmPairByPair) {
  const auto a = PointsA(100, 215);
  const auto b = PointsB(100, 216);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  const auto nn_result = NnSemiJoin(ta, tb);
  SemiJoinOptions options;
  options.bound = SemiJoinBound::kGlobalAll;
  DistanceSemiJoin<2> semi(ta, tb, options);
  JoinResult<2> pair;
  size_t k = 0;
  while (semi.Next(&pair)) {
    ASSERT_LT(k, nn_result.size());
    ASSERT_NEAR(pair.distance, nn_result[k].distance, 1e-9) << k;
    ++k;
  }
  EXPECT_EQ(k, nn_result.size());
}

TEST(WithinJoin, MatchesBruteForceWithinEps) {
  const auto a = PointsA(130, 217);
  const auto b = PointsB(140, 218);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const double eps = reference[1500].distance;

  WithinJoinStats stats;
  const auto got = WithinJoinSorted(ta, tb, eps, Metric::kEuclidean, &stats);
  std::set<std::pair<size_t, size_t>> expected;
  for (const auto& p : reference) {
    if (p.distance <= eps) expected.insert({p.id1, p.id2});
  }
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& r : got) {
    EXPECT_TRUE(expected.count({r.id1, r.id2})) << r.id1 << "," << r.id2;
    EXPECT_LE(r.distance, eps);
  }
  for (size_t k = 1; k < got.size(); ++k) {
    ASSERT_GE(got[k].distance, got[k - 1].distance);
  }
  EXPECT_GT(stats.node_pairs_visited, 0u);
}

TEST(WithinJoin, ZeroEpsFindsOnlyCoincidentPoints) {
  std::vector<Point<2>> a = {{1, 1}, {2, 2}, {3, 3}};
  std::vector<Point<2>> b = {{2, 2}, {4, 4}};
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto got = WithinJoinSorted(ta, tb, 0.0, Metric::kEuclidean);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id1, 1u);
  EXPECT_EQ(got[0].id2, 0u);
  EXPECT_DOUBLE_EQ(got[0].distance, 0.0);
}

TEST(WithinJoin, TreesOfDifferentHeights) {
  const auto a = PointsA(1000, 219);  // tall tree
  const auto b = PointsB(15, 220);    // root-leaf tree
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  ASSERT_GT(ta.height(), tb.height());
  const auto reference = BruteForcePairs(a, b);
  const double eps = reference[500].distance;
  const auto got = WithinJoinSorted(ta, tb, eps, Metric::kEuclidean);
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance <= eps) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
}

TEST(WithinJoin, AgreesWithIncrementalJoinUnderMaxDistance) {
  const auto a = PointsA(90, 221);
  const auto b = PointsB(110, 222);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const double eps = 40.0;

  const auto within = WithinJoinSorted(ta, tb, eps, Metric::kEuclidean);
  DistanceJoinOptions options;
  options.max_distance = eps;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  size_t k = 0;
  while (join.Next(&pair)) {
    ASSERT_LT(k, within.size());
    ASSERT_NEAR(pair.distance, within[k].distance, 1e-9) << k;
    ++k;
  }
  EXPECT_EQ(k, within.size());
}

}  // namespace
}  // namespace sdj::baseline
