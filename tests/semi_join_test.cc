#include "core/semi_join.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "join_test_util.h"
#include "rtree/rtree.h"

namespace sdj {
namespace {

using test::BruteForceNearestByObject;
using test::BruteForceSemiDistances;
using test::BuildPointTree;

std::vector<Point<2>> Stores(size_t n = 250, uint64_t seed = 81) {
  data::ClusterOptions options;
  options.num_points = n;
  options.extent = Rect<2>({0, 0}, {1000, 1000});
  options.num_clusters = 8;
  options.spread_fraction = 0.04;
  options.seed = seed;
  return data::GenerateClustered(options);
}

std::vector<Point<2>> Warehouses(size_t n = 400, uint64_t seed = 82) {
  return data::GenerateUniform(n, Rect<2>({0, 0}, {1000, 1000}), seed);
}

std::vector<JoinResult<2>> Drain(DistanceSemiJoin<2>& semi, size_t limit) {
  std::vector<JoinResult<2>> out;
  JoinResult<2> pair;
  while (out.size() < limit && semi.Next(&pair)) out.push_back(pair);
  return out;
}

struct SemiParam {
  SemiJoinFilter filter;
  SemiJoinBound bound;
};

class SemiStrategySweep : public ::testing::TestWithParam<SemiParam> {};

INSTANTIATE_TEST_SUITE_P(
    Strategies, SemiStrategySweep,
    ::testing::Values(SemiParam{SemiJoinFilter::kOutside, SemiJoinBound::kNone},
                      SemiParam{SemiJoinFilter::kInside1, SemiJoinBound::kNone},
                      SemiParam{SemiJoinFilter::kInside2, SemiJoinBound::kNone},
                      SemiParam{SemiJoinFilter::kInside2,
                                SemiJoinBound::kLocal},
                      SemiParam{SemiJoinFilter::kInside2,
                                SemiJoinBound::kGlobalNodes},
                      SemiParam{SemiJoinFilter::kInside2,
                                SemiJoinBound::kGlobalAll}),
    [](const auto& info) {
      std::string name;
      switch (info.param.filter) {
        case SemiJoinFilter::kOutside: name = "Outside"; break;
        case SemiJoinFilter::kInside1: name = "Inside1"; break;
        case SemiJoinFilter::kInside2: name = "Inside2"; break;
        case SemiJoinFilter::kNone: name = "None"; break;
      }
      switch (info.param.bound) {
        case SemiJoinBound::kNone: break;
        case SemiJoinBound::kLocal: name += "Local"; break;
        case SemiJoinBound::kGlobalNodes: name += "GlobalNodes"; break;
        case SemiJoinBound::kGlobalAll: name += "GlobalAll"; break;
      }
      return name;
    });

TEST_P(SemiStrategySweep, FullSemiJoinMatchesBruteForce) {
  const auto stores = Stores();
  const auto warehouses = Warehouses();
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);
  const auto expected_sorted = BruteForceSemiDistances(stores, warehouses);
  const auto expected_by_id = BruteForceNearestByObject(stores, warehouses);

  SemiJoinOptions options;
  options.filter = GetParam().filter;
  options.bound = GetParam().bound;
  DistanceSemiJoin<2> semi(ts, tw, options);
  const auto got = Drain(semi, stores.size() + 10);

  // Exactly one pair per store, in non-decreasing distance order, each with
  // the true nearest-warehouse distance.
  ASSERT_EQ(got.size(), stores.size());
  std::set<ObjectId> firsts;
  for (size_t k = 0; k < got.size(); ++k) {
    EXPECT_TRUE(firsts.insert(got[k].id1).second) << "dup " << got[k].id1;
    ASSERT_NEAR(got[k].distance, expected_by_id[got[k].id1], 1e-9)
        << "store " << got[k].id1;
    ASSERT_NEAR(got[k].distance, expected_sorted[k], 1e-9) << "k=" << k;
    if (k > 0) {
      ASSERT_GE(got[k].distance, got[k - 1].distance - 1e-12);
    }
  }
}

TEST_P(SemiStrategySweep, PrefixQueryMatches) {
  const auto stores = Stores(150, 83);
  const auto warehouses = Warehouses(200, 84);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);
  const auto expected_sorted = BruteForceSemiDistances(stores, warehouses);

  SemiJoinOptions options;
  options.filter = GetParam().filter;
  options.bound = GetParam().bound;
  options.join.max_pairs = 40;
  DistanceSemiJoin<2> semi(ts, tw, options);
  const auto got = Drain(semi, 100);
  ASSERT_EQ(got.size(), 40u);
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance, expected_sorted[k], 1e-9) << k;
  }
}

TEST(DistanceSemiJoin, EstimationPreservesResults) {
  const auto stores = Stores(200, 85);
  const auto warehouses = Warehouses(300, 86);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);
  const auto expected_sorted = BruteForceSemiDistances(stores, warehouses);

  for (uint64_t k : {1u, 20u, 100u}) {
    SemiJoinOptions options;
    options.filter = SemiJoinFilter::kInside2;
    options.bound = SemiJoinBound::kLocal;
    options.join.max_pairs = k;
    options.join.estimate_max_distance = true;
    DistanceSemiJoin<2> semi(ts, tw, options);
    const auto got = Drain(semi, k + 5);
    ASSERT_EQ(got.size(), k) << "k=" << k;
    for (size_t i = 0; i < k; ++i) {
      ASSERT_NEAR(got[i].distance, expected_sorted[i], 1e-9)
          << "k=" << k << " i=" << i;
    }
    EXPECT_EQ(semi.stats().restarts, 0u);
  }
}

TEST(DistanceSemiJoin, EstimationShrinksQueue) {
  const auto stores = Stores(400, 87);
  const auto warehouses = Warehouses(600, 88);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);

  SemiJoinOptions plain;
  plain.bound = SemiJoinBound::kLocal;
  plain.join.max_pairs = 25;
  DistanceSemiJoin<2> semi_plain(ts, tw, plain);
  Drain(semi_plain, 25);

  SemiJoinOptions est = plain;
  est.join.estimate_max_distance = true;
  DistanceSemiJoin<2> semi_est(ts, tw, est);
  Drain(semi_est, 25);

  EXPECT_LT(semi_est.stats().queue_pushes, semi_plain.stats().queue_pushes);
}

TEST(DistanceSemiJoin, AggressiveEstimationCorrectWithPossibleRestart) {
  const auto stores = Stores(150, 89);
  const auto warehouses = Warehouses(200, 90);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);
  const auto expected_sorted = BruteForceSemiDistances(stores, warehouses);

  SemiJoinOptions options;
  options.bound = SemiJoinBound::kLocal;
  options.join.max_pairs = 60;
  options.join.estimate_max_distance = true;
  options.join.aggressive_estimation = true;
  DistanceSemiJoin<2> semi(ts, tw, options);
  const auto got = Drain(semi, 70);
  ASSERT_EQ(got.size(), 60u);
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i].distance, expected_sorted[i], 1e-9) << i;
  }
}

TEST(DistanceSemiJoin, MaxDistanceLimitsOutput) {
  const auto stores = Stores(200, 91);
  const auto warehouses = Warehouses(150, 92);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);
  const auto expected = BruteForceSemiDistances(stores, warehouses);
  const double dmax = expected[expected.size() / 3];

  SemiJoinOptions options;
  options.bound = SemiJoinBound::kGlobalAll;
  options.join.max_distance = dmax;
  DistanceSemiJoin<2> semi(ts, tw, options);
  const auto got = Drain(semi, stores.size());
  size_t count = 0;
  for (double d : expected) {
    if (d <= dmax) ++count;
  }
  EXPECT_EQ(got.size(), count);
}

TEST(DistanceSemiJoin, IsAsymmetric) {
  // distance semi-join(A, B) yields |A| pairs; (B, A) yields |B| pairs, and
  // the distance multisets differ in general (Section 1).
  const auto a = Stores(80, 93);
  const auto b = Warehouses(120, 94);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  SemiJoinOptions options;
  DistanceSemiJoin<2> ab(ta, tb, options);
  DistanceSemiJoin<2> ba(tb, ta, options);
  EXPECT_EQ(Drain(ab, 1000).size(), a.size());
  EXPECT_EQ(Drain(ba, 1000).size(), b.size());
}

TEST(DistanceSemiJoin, ClusteringAssignsNearestSite) {
  // The discrete-Voronoi reading (Section 1): every store lands in the cell
  // of its nearest warehouse.
  const auto stores = Stores(100, 95);
  const auto sites = data::GenerateUniform(7, Rect<2>({0, 0}, {1000, 1000}),
                                           96);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(sites);
  SemiJoinOptions options;
  options.bound = SemiJoinBound::kGlobalAll;
  DistanceSemiJoin<2> semi(ts, tw, options);
  JoinResult<2> pair;
  size_t count = 0;
  while (semi.Next(&pair)) {
    // Verify the assigned site is the argmin by brute force.
    double best = std::numeric_limits<double>::infinity();
    size_t best_site = 0;
    for (size_t s = 0; s < sites.size(); ++s) {
      const double d = Dist(stores[pair.id1], sites[s]);
      if (d < best) {
        best = d;
        best_site = s;
      }
    }
    ASSERT_NEAR(pair.distance, best, 1e-9);
    // Ties between sites are broken arbitrarily; distances must agree.
    ASSERT_NEAR(Dist(stores[pair.id1], sites[pair.id2]), best, 1e-9);
    (void)best_site;
    ++count;
  }
  EXPECT_EQ(count, stores.size());
}

TEST(DistanceSemiJoin, OutsideFilterCountsDuplicates) {
  const auto stores = Stores(100, 97);
  const auto warehouses = Warehouses(100, 98);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);
  SemiJoinOptions options;
  options.filter = SemiJoinFilter::kOutside;
  DistanceSemiJoin<2> semi(ts, tw, options);
  Drain(semi, stores.size() + 10);
  // Completing the semi-join through the raw join must have discarded many
  // duplicate-first pairs.
  EXPECT_GT(semi.stats().filtered_reported, 0u);
}

TEST(DistanceSemiJoin, BoundsActuallyPrune) {
  const auto stores = Stores(300, 99);
  const auto warehouses = Warehouses(500, 100);
  RTree<2> ts = BuildPointTree(stores);
  RTree<2> tw = BuildPointTree(warehouses);

  SemiJoinOptions no_bound;
  no_bound.filter = SemiJoinFilter::kInside2;
  DistanceSemiJoin<2> plain(ts, tw, no_bound);
  Drain(plain, stores.size());

  SemiJoinOptions with_bound = no_bound;
  with_bound.bound = SemiJoinBound::kGlobalAll;
  DistanceSemiJoin<2> bounded(ts, tw, with_bound);
  Drain(bounded, stores.size());

  EXPECT_GT(bounded.stats().pruned_by_bound, 0u);
  EXPECT_LT(bounded.stats().queue_pushes, plain.stats().queue_pushes);
}

TEST(DistanceSemiJoin, EmptyInputs) {
  RTree<2> empty;
  RTree<2> nonempty = BuildPointTree(Stores(20, 101));
  SemiJoinOptions options;
  {
    DistanceSemiJoin<2> semi(empty, nonempty, options);
    JoinResult<2> r;
    EXPECT_FALSE(semi.Next(&r));
  }
  {
    DistanceSemiJoin<2> semi(nonempty, empty, options);
    JoinResult<2> r;
    EXPECT_FALSE(semi.Next(&r));
  }
}

}  // namespace
}  // namespace sdj
