// Integration tests for sdjoin_cli's durable-cursor flag matrix (see the
// header comment in tools/sdjoin_cli.cc): exit codes, suspend/resume stream
// equality across thread counts, checkpoint fallback after on-disk snapshot
// corruption, and fault-injected runs — plus the sdjoin_scrub exit-code
// matrix (clean=0, corruption=1, usage=2, unreadable=3; DESIGN.md §16).
// The binaries under test are passed as command-line arguments: argv[1] =
// sdjoin_cli, argv[2] = sdjoin_scrub (wired up in tests/CMakeLists.txt).
#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/checksum.h"

std::string g_cli_path;
std::string g_scrub_path;

namespace sdj {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout and stderr, interleaved
};

RunResult RunBinary(const std::string& binary, const std::string& args) {
  const std::string command = binary + " " + args + " 2>&1";
  RunResult result;
  std::FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult RunCli(const std::string& args) {
  return RunBinary(g_cli_path, args);
}

RunResult RunScrub(const std::string& args) {
  return RunBinary(g_scrub_path, args);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return lines;
}

// The "id1,id2,distance" result lines, with comments and warnings dropped.
std::vector<std::string> PairLines(const std::string& output) {
  std::vector<std::string> pairs;
  for (const std::string& line : SplitLines(output)) {
    if (!line.empty() && line[0] >= '0' && line[0] <= '9' &&
        line.find(',') != std::string::npos) {
      pairs.push_back(line);
    }
  }
  return pairs;
}

// The "# cost: ..." summary line (empty if absent).
std::string CostLine(const std::string& output) {
  for (const std::string& line : SplitLines(output)) {
    if (line.rfind("# cost:", 0) == 0) return line;
  }
  return "";
}

// Flips one byte of a physical snapshot page so the page checksum fails;
// mirrors CorruptPage in join_cursor_test.cc.
void CorruptSnapshotPage(const std::string& path, uint32_t page) {
  const uint64_t physical = 4096 + storage::kPageTrailerSize;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const long offset = static_cast<long>(page * physical + 16);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ 0xFF, f), EOF);
  std::fclose(f);
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    a_csv_ = ::testing::TempDir() + "/cli_a.csv";
    b_csv_ = ::testing::TempDir() + "/cli_b.csv";
    ASSERT_EQ(RunCli("gen --out=" + a_csv_ + " --n=400 --seed=11").exit_code,
              0);
    ASSERT_EQ(RunCli("gen --out=" + b_csv_ + " --n=400 --seed=12").exit_code,
              0);
  }

  static std::string JoinArgs(const std::string& extra) {
    return "join --a=" + a_csv_ + " --b=" + b_csv_ +
           " --k=300 --print=1000 " + extra;
  }
  static std::string SemiArgs(const std::string& extra) {
    return "semijoin --a=" + a_csv_ + " --b=" + b_csv_ +
           " --k=150 --print=1000 " + extra;
  }
  static std::string WithinArgs(const std::string& extra) {
    return "join --a=" + a_csv_ + " --b=" + b_csv_ +
           " --within=3000 --print=100000 " + extra;
  }

  static std::string a_csv_;
  static std::string b_csv_;
};

std::string CliTest::a_csv_;
std::string CliTest::b_csv_;

TEST_F(CliTest, UsageAndInputExitCodes) {
  EXPECT_EQ(RunCli("frobnicate").exit_code, 2);  // unknown command
  EXPECT_EQ(RunCli("join --b=" + b_csv_).exit_code, 1);  // missing --a
  // --resume without --snapshot is a usage error, not a silent fresh start.
  const RunResult r = RunCli(JoinArgs("--resume"));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("--resume requires --snapshot"), std::string::npos);
}

TEST_F(CliTest, SuspendThenResumeReproducesTheUninterruptedStream) {
  const RunResult reference = RunCli(JoinArgs(""));
  ASSERT_EQ(reference.exit_code, 0);
  const std::vector<std::string> expected = PairLines(reference.output);
  ASSERT_EQ(expected.size(), 300u);

  const std::string snap = ::testing::TempDir() + "/cli_join.snap";
  std::remove(snap.c_str());
  const RunResult suspended =
      RunCli(JoinArgs("--suspend-after=120 --snapshot=" + snap));
  EXPECT_EQ(suspended.exit_code, 4);
  EXPECT_NE(suspended.output.find("suspended: state checkpointed"),
            std::string::npos);
  std::vector<std::string> combined = PairLines(suspended.output);
  ASSERT_EQ(combined.size(), 120u);

  // Resume with a different thread count: the thread count is not part of
  // the snapshot fingerprint and the stream is output-identical.
  const RunResult resumed =
      RunCli(JoinArgs("--resume --threads=4 --snapshot=" + snap));
  EXPECT_EQ(resumed.exit_code, 0);
  for (const std::string& line : PairLines(resumed.output)) {
    combined.push_back(line);
  }
  EXPECT_EQ(combined, expected);
  // Final statistics match the uninterrupted run's as well.
  EXPECT_EQ(CostLine(resumed.output), CostLine(reference.output));
}

TEST_F(CliTest, CorruptNewestSnapshotFallsBackToPreviousCheckpoint) {
  const RunResult reference = RunCli(JoinArgs(""));
  ASSERT_EQ(reference.exit_code, 0);
  const std::vector<std::string> expected = PairLines(reference.output);

  const std::string snap = ::testing::TempDir() + "/cli_fallback.snap";
  std::remove(snap.c_str());
  // Checkpoints at pairs 50 (epoch 1) and 100 (epoch 2); the suspension
  // snapshot at pair 120 is epoch 3, stored in header slot 3 & 1 == 1.
  const RunResult suspended = RunCli(JoinArgs(
      "--checkpoint-every=50 --suspend-after=120 --snapshot=" + snap));
  ASSERT_EQ(suspended.exit_code, 4);
  CorruptSnapshotPage(snap, /*page=*/1);

  // Resume falls back to epoch 2 (pair 100) and replays from there.
  const RunResult resumed = RunCli(JoinArgs("--resume --snapshot=" + snap));
  EXPECT_EQ(resumed.exit_code, 0);
  EXPECT_NE(resumed.output.find("snapshot fallbacks"), std::string::npos);
  std::vector<std::string> combined(PairLines(suspended.output));
  ASSERT_GE(combined.size(), 100u);
  combined.resize(100);
  for (const std::string& line : PairLines(resumed.output)) {
    combined.push_back(line);
  }
  EXPECT_EQ(combined, expected);
}

TEST_F(CliTest, ResumeOnEmptySnapshotStoreWarnsAndStartsFromScratch) {
  const std::string snap = ::testing::TempDir() + "/cli_empty.snap";
  std::remove(snap.c_str());
  const RunResult r = RunCli(JoinArgs("--resume --snapshot=" + snap));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("no usable snapshot"), std::string::npos);
  EXPECT_EQ(PairLines(r.output).size(), 300u);
}

TEST_F(CliTest, TransientFaultsWithCheckpointsStillResumeCleanly) {
  const RunResult reference = RunCli(JoinArgs(""));
  ASSERT_EQ(reference.exit_code, 0);

  const std::string snap = ::testing::TempDir() + "/cli_faults.snap";
  std::remove(snap.c_str());
  // Transient faults cover the trees AND the snapshot store; bounded
  // retries recover both, so the stream still matches the clean run.
  const std::string faults = "--inject-faults=5 ";
  const RunResult suspended = RunCli(JoinArgs(
      faults + "--checkpoint-every=40 --suspend-after=150 --snapshot=" +
      snap));
  ASSERT_EQ(suspended.exit_code, 4);
  const RunResult resumed =
      RunCli(JoinArgs(faults + "--resume --snapshot=" + snap));
  EXPECT_EQ(resumed.exit_code, 0);
  std::vector<std::string> combined = PairLines(suspended.output);
  ASSERT_EQ(combined.size(), 150u);
  for (const std::string& line : PairLines(resumed.output)) {
    combined.push_back(line);
  }
  EXPECT_EQ(combined, PairLines(reference.output));
}

TEST_F(CliTest, HardFaultExitsThreeWithIdenticalPrefixAcrossThreads) {
  // --buffer=2 forces physical reads (a fully cached tree never reaches the
  // injector); after 10 of them every further read fails hard.
  const std::string faults =
      "--inject-faults=3 --fault-read-rate=0 --fault-write-rate=0 "
      "--fault-bit-flip-rate=0 --fault-hard-read-after=10 --buffer=2 ";
  const RunResult serial = RunCli(JoinArgs(faults + "--threads=1"));
  const RunResult parallel = RunCli(JoinArgs(faults + "--threads=4"));
  EXPECT_EQ(serial.exit_code, 3);
  EXPECT_NE(serial.output.find("io-error"), std::string::npos);
  // The parallel engine reports the identical error-point prefix.
  EXPECT_EQ(parallel.exit_code, 3);
  EXPECT_EQ(PairLines(parallel.output), PairLines(serial.output));
}

TEST_F(CliTest, WithinJoinMatchesMaxDistanceRestrictedJoin) {
  const RunResult within = RunCli(WithinArgs(""));
  ASSERT_EQ(within.exit_code, 0);
  const std::vector<std::string> pairs = PairLines(within.output);
  ASSERT_GT(pairs.size(), 0u);
  // The stream ascends and respects eps (inclusive).
  double prev = 0.0;
  for (const std::string& line : pairs) {
    const double d = std::atof(line.substr(line.rfind(',') + 1).c_str());
    EXPECT_GE(d, prev);
    EXPECT_LE(d, 3000.0);
    prev = d;
  }
  // Same stream as a DistanceJoin clamped to the same range.
  const RunResult clamped = RunCli("join --a=" + a_csv_ + " --b=" + b_csv_ +
                                   " --max-distance=3000 --print=100000");
  ASSERT_EQ(clamped.exit_code, 0);
  EXPECT_EQ(pairs, PairLines(clamped.output));
}

TEST_F(CliTest, WithinJoinSuspendResumeAcrossThreadCounts) {
  const RunResult reference = RunCli(WithinArgs(""));
  ASSERT_EQ(reference.exit_code, 0);
  const std::vector<std::string> expected = PairLines(reference.output);
  ASSERT_GT(expected.size(), 60u);

  const std::string snap = ::testing::TempDir() + "/cli_within.snap";
  std::remove(snap.c_str());
  const RunResult suspended =
      RunCli(WithinArgs("--suspend-after=40 --snapshot=" + snap));
  EXPECT_EQ(suspended.exit_code, 4);
  std::vector<std::string> combined = PairLines(suspended.output);
  ASSERT_EQ(combined.size(), 40u);

  const RunResult resumed =
      RunCli(WithinArgs("--resume --threads=4 --snapshot=" + snap));
  EXPECT_EQ(resumed.exit_code, 0);
  for (const std::string& line : PairLines(resumed.output)) {
    combined.push_back(line);
  }
  EXPECT_EQ(combined, expected);
  EXPECT_EQ(CostLine(resumed.output), CostLine(reference.output));
}

TEST_F(CliTest, WithinJoinRejectsIncompatibleShapingFlags) {
  const RunResult r = RunCli(WithinArgs("--k=10"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--within is incompatible with --k"),
            std::string::npos);
  EXPECT_EQ(RunCli(WithinArgs("--estimate")).exit_code, 1);
  EXPECT_EQ(RunCli(WithinArgs("--reverse")).exit_code, 1);
  EXPECT_EQ(RunCli(WithinArgs("--max-distance=5")).exit_code, 1);
}

TEST_F(CliTest, SemiJoinSuspendResumeMatrix) {
  const RunResult reference = RunCli(SemiArgs(""));
  ASSERT_EQ(reference.exit_code, 0);
  const std::vector<std::string> expected = PairLines(reference.output);
  ASSERT_EQ(expected.size(), 150u);

  const std::string snap = ::testing::TempDir() + "/cli_semi.snap";
  std::remove(snap.c_str());
  const RunResult suspended = RunCli(
      SemiArgs("--suspend-after=60 --checkpoint-every=25 --snapshot=" + snap));
  EXPECT_EQ(suspended.exit_code, 4);
  std::vector<std::string> combined = PairLines(suspended.output);
  ASSERT_EQ(combined.size(), 60u);

  const RunResult resumed = RunCli(SemiArgs("--resume --snapshot=" + snap));
  EXPECT_EQ(resumed.exit_code, 0);
  for (const std::string& line : PairLines(resumed.output)) {
    combined.push_back(line);
  }
  EXPECT_EQ(combined, expected);
  EXPECT_EQ(CostLine(resumed.output), CostLine(reference.output));
}

// ---- serve command (DESIGN.md §14) ----

// Drops the serve line's leading "<session-id>," so the remainder is
// comparable to a join command's "id1,id2,distance" line.
std::string StripSessionId(const std::string& line) {
  const size_t comma = line.find(',');
  return comma == std::string::npos ? line : line.substr(comma + 1);
}

// One served join session emits exactly the solo join command's stream.
TEST_F(CliTest, ServeSingleSessionMatchesSoloJoin) {
  const RunResult reference = RunCli(JoinArgs(""));
  ASSERT_EQ(reference.exit_code, 0);
  const std::vector<std::string> expected = PairLines(reference.output);
  ASSERT_EQ(expected.size(), 300u);

  const RunResult served =
      RunCli("serve --a=" + a_csv_ + " --b=" + b_csv_ +
             " --sessions=1 --max-results=300 --print=1000");
  EXPECT_EQ(served.exit_code, 0);
  std::vector<std::string> pairs;
  for (const std::string& line : PairLines(served.output)) {
    EXPECT_EQ(line.substr(0, 2), "1,");
    pairs.push_back(StripSessionId(line));
  }
  EXPECT_EQ(pairs, expected);
  EXPECT_NE(served.output.find("state=closed"), std::string::npos);
}

// Memory pressure plus snapshot-store faults: sessions evict, rehydrate,
// and complete with zero failures (bounded retries absorb the faults).
TEST_F(CliTest, ServeUnderPressureAndFaultsCompletesAllSessions) {
  const RunResult served =
      RunCli("serve --a=" + a_csv_ + " --b=" + b_csv_ +
             " --sessions=3 --max-results=120 --budget-entries=128 "
             "--inject-faults=5 --print=0");
  EXPECT_EQ(served.exit_code, 0);
  EXPECT_NE(served.output.find(" 0 pinned, 0 failed"), std::string::npos);
  EXPECT_EQ(served.output.find(" 0 evictions,"), std::string::npos)
      << served.output;
}

// --suspend-after-rounds checkpoints every live session (exit 4); a later
// --resume recovers the table and each stream continues exactly where it
// stopped — the continuation matches the solo run's suffix.
TEST_F(CliTest, ServeSuspendResumeContinuesEveryStream) {
  const std::string state_dir = ::testing::TempDir() + "/cli_serve_state";
  ::mkdir(state_dir.c_str(), 0755);
  std::remove((state_dir + "/sessions.tbl").c_str());
  for (int i = 1; i <= 4; ++i) {
    std::remove((state_dir + "/session_" + std::to_string(i) + ".snap")
                    .c_str());
  }
  const std::string common = "serve --a=" + a_csv_ + " --b=" + b_csv_ +
                             " --state-dir=" + state_dir + " ";
  const RunResult suspended = RunCli(
      common + "--sessions=3 --batch=40 --suspend-after-rounds=1 --print=0");
  EXPECT_EQ(suspended.exit_code, 4);
  EXPECT_NE(suspended.output.find("rerun with --resume"), std::string::npos);

  const RunResult resumed =
      RunCli(common + "--resume --max-results=60 --print=1000");
  EXPECT_EQ(resumed.exit_code, 0);
  EXPECT_NE(resumed.output.find("recovered 3 session(s)"), std::string::npos);
  std::vector<std::string> continuation;  // session 1 = the Euclidean join
  for (const std::string& line : PairLines(resumed.output)) {
    if (line.substr(0, 2) == "1,") continuation.push_back(StripSessionId(line));
  }
  ASSERT_EQ(continuation.size(), 60u);

  const RunResult reference = RunCli(JoinArgs(""));
  const std::vector<std::string> solo = PairLines(reference.output);
  ASSERT_GE(solo.size(), 100u);
  const std::vector<std::string> suffix(solo.begin() + 40, solo.begin() + 100);
  EXPECT_EQ(continuation, suffix);
}

// ---- sdjoin_scrub (DESIGN.md §16) ----

// Builds a snapshot store with three committed epochs (the checkpoint run
// from CorruptNewestSnapshotFallsBackToPreviousCheckpoint) at `snap`.
void BuildThreeEpochSnapshot(const std::string& snap,
                             const std::string& join_args) {
  std::remove(snap.c_str());
  const RunResult suspended = RunCli(
      join_args + " --checkpoint-every=50 --suspend-after=120 --snapshot=" +
      snap);
  ASSERT_EQ(suspended.exit_code, 4);
}

TEST_F(CliTest, ScrubUsageAndUnreadableFileExitCodes) {
  EXPECT_EQ(RunScrub("").exit_code, 2);               // missing --file
  EXPECT_EQ(RunScrub("--file=x --kind=bogus").exit_code, 2);
  EXPECT_EQ(RunScrub("--file=x --nonsense").exit_code, 2);
  // A missing file is unreadable (3) and must NOT be created by the scrub
  // (SnapshotStore::Open would create one).
  const std::string missing = ::testing::TempDir() + "/scrub_missing.snap";
  std::remove(missing.c_str());
  EXPECT_EQ(RunScrub("--file=" + missing).exit_code, 3);
  struct stat st;
  EXPECT_NE(::stat(missing.c_str(), &st), 0);
}

TEST_F(CliTest, ScrubCleanSnapshotStoreExitsZero) {
  const std::string snap = ::testing::TempDir() + "/scrub_clean.snap";
  BuildThreeEpochSnapshot(snap, JoinArgs(""));
  const RunResult r = RunScrub("--file=" + snap);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verdict: clean"), std::string::npos);
  EXPECT_NE(r.output.find("committed"), std::string::npos);
  EXPECT_NE(r.output.find("stale"), std::string::npos);
}

TEST_F(CliTest, ScrubDetectsTornSlotRepairsAndConverges) {
  const std::string snap = ::testing::TempDir() + "/scrub_torn.snap";
  BuildThreeEpochSnapshot(snap, JoinArgs(""));
  // Epoch 3 (the newest) lives in slot 1; flipping a byte of its first
  // payload page (page 3) tears the slot. (Tearing the header page instead
  // would be healed by the store's own open path before scrub ever ran.)
  CorruptSnapshotPage(snap, /*page=*/3);

  const RunResult found = RunScrub("--file=" + snap);
  EXPECT_EQ(found.exit_code, 1) << found.output;
  EXPECT_NE(found.output.find("slot 1: torn"), std::string::npos);
  EXPECT_NE(found.output.find("slot 0: committed"), std::string::npos);
  EXPECT_NE(found.output.find("verdict: corrupt"), std::string::npos);

  // Repair quarantines the torn slot (still exit 1: corruption was found —
  // rerun to verify), then a rescrub comes back clean.
  const RunResult repaired = RunScrub("--file=" + snap + " --repair");
  EXPECT_EQ(repaired.exit_code, 1) << repaired.output;
  EXPECT_NE(repaired.output.find("repair: healed-slots=1"),
            std::string::npos);
  const RunResult rescrub = RunScrub("--file=" + snap);
  EXPECT_EQ(rescrub.exit_code, 0) << rescrub.output;
  EXPECT_NE(rescrub.output.find("verdict: clean"), std::string::npos);

  // The repaired store still resumes — from the surviving epoch 2.
  const RunResult resumed = RunCli(JoinArgs("--resume --snapshot=" + snap));
  EXPECT_EQ(resumed.exit_code, 0);
}

TEST_F(CliTest, ScrubDetectsOrphanedTailPagesAndTruncatesThem) {
  const std::string snap = ::testing::TempDir() + "/scrub_orphan.snap";
  BuildThreeEpochSnapshot(snap, JoinArgs(""));
  // Append two whole garbage pages beyond what any slot references — the
  // abandoned remains of a larger commit.
  {
    std::FILE* f = std::fopen(snap.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::string junk(2 * (4096 + storage::kPageTrailerSize), 'J');
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
    std::fclose(f);
  }
  const RunResult found = RunScrub("--file=" + snap);
  EXPECT_EQ(found.exit_code, 1) << found.output;
  EXPECT_NE(found.output.find("orphaned-tail-pages:"), std::string::npos);

  const RunResult repaired = RunScrub("--file=" + snap + " --repair");
  EXPECT_EQ(repaired.exit_code, 1) << repaired.output;
  EXPECT_NE(repaired.output.find("repair: truncated-bytes="),
            std::string::npos);
  const RunResult rescrub = RunScrub("--file=" + snap);
  EXPECT_EQ(rescrub.exit_code, 0) << rescrub.output;
  // Nothing of value was cut: the store still resumes from epoch 3.
  const RunResult resumed = RunCli(JoinArgs("--resume --snapshot=" + snap));
  EXPECT_EQ(resumed.exit_code, 0);
}

TEST_F(CliTest, ScrubPagesKindDetectsCorruptInteriorPages) {
  const std::string snap = ::testing::TempDir() + "/scrub_pages.snap";
  BuildThreeEpochSnapshot(snap, JoinArgs(""));
  const RunResult clean = RunScrub("--file=" + snap + " --kind=pages");
  EXPECT_EQ(clean.exit_code, 0) << clean.output;

  CorruptSnapshotPage(snap, /*page=*/2);
  const RunResult found = RunScrub("--file=" + snap + " --kind=pages");
  EXPECT_EQ(found.exit_code, 1) << found.output;
  EXPECT_NE(found.output.find("corrupt-page: 2"), std::string::npos);
}

TEST_F(CliTest, ScrubPagesKindDetectsLeakedPagesAndTruncates) {
  const std::string snap = ::testing::TempDir() + "/scrub_leak.snap";
  BuildThreeEpochSnapshot(snap, JoinArgs(""));
  const RunResult sized = RunScrub("--file=" + snap + " --kind=pages");
  ASSERT_EQ(sized.exit_code, 0) << sized.output;
  // Parse "pages: scanned=<N> ..." to learn the honest page count.
  const size_t pos = sized.output.find("scanned=");
  ASSERT_NE(pos, std::string::npos);
  const uint64_t pages = std::strtoull(
      sized.output.c_str() + pos + std::strlen("scanned="), nullptr, 10);
  ASSERT_GT(pages, 2u);

  // Claim the file should be two pages smaller: the extra pages are leaked
  // (a spill file that grew past its accounted size would look like this).
  const std::string expect =
      " --kind=pages --expect-pages=" + std::to_string(pages - 2);
  const RunResult found = RunScrub("--file=" + snap + expect);
  EXPECT_EQ(found.exit_code, 1) << found.output;
  EXPECT_NE(found.output.find("leaked-pages: 2"), std::string::npos);

  const RunResult repaired = RunScrub("--file=" + snap + expect + " --repair");
  EXPECT_EQ(repaired.exit_code, 1) << repaired.output;
  const RunResult rescrub = RunScrub("--file=" + snap + expect);
  EXPECT_EQ(rescrub.exit_code, 0) << rescrub.output;
}

TEST_F(CliTest, ScrubSubcommandOfCliMatchesStandaloneBinary) {
  const std::string snap = ::testing::TempDir() + "/scrub_subcmd.snap";
  BuildThreeEpochSnapshot(snap, JoinArgs(""));
  const RunResult standalone = RunScrub("--file=" + snap);
  const RunResult subcommand = RunCli("scrub --file=" + snap);
  EXPECT_EQ(subcommand.exit_code, standalone.exit_code);
  EXPECT_EQ(subcommand.output, standalone.output);
  EXPECT_EQ(RunCli("scrub").exit_code, 2);
}

}  // namespace
}  // namespace sdj

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) g_cli_path = argv[1];
  if (argc > 2) g_scrub_path = argv[2];
  if (g_cli_path.empty() || g_scrub_path.empty()) {
    std::fprintf(stderr,
                 "usage: cli_test <path-to-sdjoin_cli> <path-to-sdjoin_scrub>\n");
    return 1;
  }
  return RUN_ALL_TESTS();
}
