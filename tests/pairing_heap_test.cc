#include "util/pairing_heap.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sdj {
namespace {

TEST(PairingHeap, EmptyOnConstruction) {
  PairingHeap<int> heap;
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
}

TEST(PairingHeap, PushPopSingle) {
  PairingHeap<int> heap;
  heap.Push(42);
  EXPECT_FALSE(heap.Empty());
  EXPECT_EQ(heap.Size(), 1u);
  EXPECT_EQ(heap.Top(), 42);
  EXPECT_EQ(heap.Pop(), 42);
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeap, PopsInSortedOrder) {
  PairingHeap<int> heap;
  const std::vector<int> values = {5, 3, 8, 1, 9, 2, 7, 4, 6, 0};
  for (int v : values) heap.Push(v);
  for (int expected = 0; expected < 10; ++expected) {
    EXPECT_EQ(heap.Top(), expected);
    EXPECT_EQ(heap.Pop(), expected);
  }
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeap, HandlesDuplicates) {
  PairingHeap<int> heap;
  for (int i = 0; i < 5; ++i) heap.Push(7);
  heap.Push(3);
  EXPECT_EQ(heap.Pop(), 3);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(heap.Pop(), 7);
}

TEST(PairingHeap, CustomComparatorMaxHeap) {
  PairingHeap<int, std::greater<int>> heap;
  for (int v : {2, 9, 4, 1}) heap.Push(v);
  EXPECT_EQ(heap.Pop(), 9);
  EXPECT_EQ(heap.Pop(), 4);
  EXPECT_EQ(heap.Pop(), 2);
  EXPECT_EQ(heap.Pop(), 1);
}

TEST(PairingHeap, EraseRoot) {
  PairingHeap<int> heap;
  auto h1 = heap.Push(1);
  heap.Push(2);
  heap.Push(3);
  EXPECT_EQ(heap.Erase(h1), 1);
  EXPECT_EQ(heap.Size(), 2u);
  EXPECT_EQ(heap.Pop(), 2);
  EXPECT_EQ(heap.Pop(), 3);
}

TEST(PairingHeap, EraseInterior) {
  PairingHeap<int> heap;
  heap.Push(1);
  auto h5 = heap.Push(5);
  heap.Push(3);
  heap.Push(7);
  EXPECT_EQ(heap.Erase(h5), 5);
  EXPECT_EQ(heap.Pop(), 1);
  EXPECT_EQ(heap.Pop(), 3);
  EXPECT_EQ(heap.Pop(), 7);
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeap, EraseAllElementsIndividually) {
  PairingHeap<int> heap;
  std::vector<PairingHeap<int>::Handle> handles;
  for (int i = 0; i < 20; ++i) handles.push_back(heap.Push(i));
  // Erase in an arbitrary order.
  for (int i : {13, 0, 19, 7, 4, 1, 18, 2, 3, 5, 6, 8, 9, 10, 11, 12, 14, 15,
                16, 17}) {
    EXPECT_EQ(heap.Erase(handles[i]), i);
  }
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeap, DecreaseKeyMovesElementUp) {
  PairingHeap<int> heap;
  heap.Push(10);
  auto h = heap.Push(20);
  heap.Push(30);
  heap.DecreaseKey(h, 5);
  EXPECT_EQ(heap.Pop(), 5);
  EXPECT_EQ(heap.Pop(), 10);
  EXPECT_EQ(heap.Pop(), 30);
}

TEST(PairingHeap, DecreaseKeyOnRoot) {
  PairingHeap<int> heap;
  auto h = heap.Push(10);
  heap.Push(20);
  heap.DecreaseKey(h, 1);
  EXPECT_EQ(heap.Pop(), 1);
  EXPECT_EQ(heap.Pop(), 20);
}

TEST(PairingHeap, ClearReleasesAll) {
  PairingHeap<int> heap;
  for (int i = 0; i < 100; ++i) heap.Push(i);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_EQ(heap.Size(), 0u);
  heap.Push(1);
  EXPECT_EQ(heap.Pop(), 1);
}

TEST(PairingHeap, MoveConstructionTransfersOwnership) {
  PairingHeap<int> a;
  a.Push(3);
  a.Push(1);
  PairingHeap<int> b(std::move(a));
  EXPECT_EQ(b.Size(), 2u);
  EXPECT_EQ(b.Pop(), 1);
  EXPECT_EQ(b.Pop(), 3);
}

TEST(PairingHeap, MoveAssignmentReplacesContents) {
  PairingHeap<int> a;
  a.Push(5);
  PairingHeap<int> b;
  b.Push(9);
  b.Push(8);
  b = std::move(a);
  EXPECT_EQ(b.Size(), 1u);
  EXPECT_EQ(b.Pop(), 5);
}

TEST(PairingHeap, RandomizedAgainstStdPriorityQueue) {
  Rng rng(12345);
  PairingHeap<uint64_t> heap;
  std::priority_queue<uint64_t, std::vector<uint64_t>, std::greater<>> ref;
  for (int round = 0; round < 20000; ++round) {
    const bool push = ref.empty() || rng.NextDouble() < 0.6;
    if (push) {
      const uint64_t v = rng.NextBounded(1000000);
      heap.Push(v);
      ref.push(v);
    } else {
      ASSERT_EQ(heap.Top(), ref.top());
      ASSERT_EQ(heap.Pop(), ref.top());
      ref.pop();
    }
    ASSERT_EQ(heap.Size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(heap.Pop(), ref.top());
    ref.pop();
  }
  EXPECT_TRUE(heap.Empty());
}

TEST(PairingHeap, RandomizedEraseMaintainsHeapProperty) {
  Rng rng(999);
  PairingHeap<uint64_t> heap;
  std::multiset<uint64_t> ref;
  std::vector<std::pair<PairingHeap<uint64_t>::Handle, uint64_t>> live;
  for (int round = 0; round < 5000; ++round) {
    const double action = rng.NextDouble();
    if (action < 0.5 || live.empty()) {
      // Unique values so that handle bookkeeping below is unambiguous.
      const uint64_t v =
          rng.NextBounded(100000) * 8192 + static_cast<uint64_t>(round);
      live.emplace_back(heap.Push(v), v);
      ref.insert(v);
    } else if (action < 0.75) {
      // Erase a random live element.
      const size_t i = rng.NextBounded(live.size());
      const uint64_t v = heap.Erase(live[i].first);
      ASSERT_EQ(v, live[i].second);
      ref.erase(ref.find(v));
      live[i] = live.back();
      live.pop_back();
    } else {
      // Pop the minimum; remove the matching handle from `live`.
      const uint64_t v = heap.Pop();
      ASSERT_EQ(v, *ref.begin());
      ref.erase(ref.begin());
      for (size_t i = 0; i < live.size(); ++i) {
        if (live[i].second == v) {
          live[i] = live.back();
          live.pop_back();
          break;
        }
      }
    }
    ASSERT_EQ(heap.Size(), ref.size());
  }
}

}  // namespace
}  // namespace sdj
