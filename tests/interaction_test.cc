// Cross-feature interaction tests: combinations of queue implementation,
// semi-join strategies, obr mode, estimation, filters, and index families
// that individual suites do not exercise together.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "quadtree/quadtree.h"

namespace sdj {
namespace {

using test::BruteForcePairs;
using test::BruteForceSemiDistances;
using test::BuildPointTree;

std::vector<Point<2>> A(size_t n = 200, uint64_t seed = 771) {
  return data::GenerateUniform(n, Rect<2>({0, 0}, {1000, 1000}), seed);
}
std::vector<Point<2>> B(size_t n = 250, uint64_t seed = 772) {
  data::ClusterOptions options;
  options.num_points = n;
  options.extent = Rect<2>({0, 0}, {1000, 1000});
  options.num_clusters = 5;
  options.seed = seed;
  return data::GenerateClustered(options);
}

TEST(Interaction, SemiJoinOverHybridQueue) {
  const auto a = A();
  const auto b = B();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto expected = BruteForceSemiDistances(a, b);

  SemiJoinOptions options;
  options.bound = SemiJoinBound::kGlobalAll;
  options.join.use_hybrid_queue = true;
  options.join.hybrid.tier_width = 8.0;
  DistanceSemiJoin<2> semi(ta, tb, options);
  JoinResult<2> pair;
  std::vector<double> got;
  while (semi.Next(&pair)) got.push_back(pair.distance);
  ASSERT_EQ(got.size(), a.size());
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k], expected[k], 1e-9) << k;
  }
}

TEST(Interaction, ObrModeWithEstimation) {
  const auto a = A(150, 773);
  const auto b = B(180, 774);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);

  DistanceJoinOptions options;
  options.max_pairs = 60;
  options.estimate_max_distance = true;
  options.exact_object_distance = [&a, &b](ObjectId i, ObjectId j) {
    return Dist(a[i], b[j]);
  };
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
  EXPECT_EQ(join.stats().restarts, 0u);
}

TEST(Interaction, ObrModeWithHybridQueueAndRange) {
  const auto a = A(120, 775);
  const auto b = B(150, 776);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const double lo = reference[300].distance;
  const double hi = reference[4000].distance;

  DistanceJoinOptions options;
  options.min_distance = lo;
  options.max_distance = hi;
  options.use_hybrid_queue = true;
  options.hybrid.tier_width = std::max(1.0, hi / 7);
  options.exact_object_distance = [&a, &b](ObjectId i, ObjectId j) {
    return Dist(a[i], b[j]);
  };
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  size_t count = 0;
  double last = 0.0;
  while (join.Next(&pair)) {
    EXPECT_GE(pair.distance, lo - 1e-12);
    EXPECT_LE(pair.distance, hi + 1e-12);
    EXPECT_GE(pair.distance, last - 1e-12);
    last = pair.distance;
    ++count;
  }
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance >= lo && p.distance <= hi) ++expected;
  }
  EXPECT_EQ(count, expected);
}

TEST(Interaction, SemiJoinEstimationWithGlobalAllBound) {
  // Figure 10 uses Local; GlobalAll + estimation must also stay exact.
  const auto a = A(180, 777);
  const auto b = B(220, 778);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto expected = BruteForceSemiDistances(a, b);

  SemiJoinOptions options;
  options.bound = SemiJoinBound::kGlobalAll;
  options.join.max_pairs = 50;
  options.join.estimate_max_distance = true;
  DistanceSemiJoin<2> semi(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(semi.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, expected[k], 1e-9) << k;
  }
}

TEST(Interaction, FiltersWithSimultaneousPolicy) {
  const auto a = A(150, 779);
  const auto b = B(150, 780);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const Rect<2> window({0, 0}, {600, 600});

  JoinFilters<2> filters;
  filters.window1 = window;
  DistanceJoinOptions options;
  options.node_policy = NodeProcessingPolicy::kSimultaneous;
  options.max_distance = 150.0;
  DistanceJoin<2> join(ta, tb, options, filters);
  JoinResult<2> pair;
  size_t count = 0;
  while (join.Next(&pair)) {
    EXPECT_TRUE(window.Contains(a[pair.id1]));
    EXPECT_LE(pair.distance, 150.0);
    ++count;
  }
  size_t expected = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!window.Contains(a[i])) continue;
    for (const auto& q : b) {
      if (Dist(a[i], q) <= 150.0) ++expected;
    }
  }
  EXPECT_EQ(count, expected);
}

TEST(Interaction, QuadtreeWithHybridQueue) {
  const auto a = A(150, 781);
  const auto b = B(180, 782);
  const Rect<2> world({0, 0}, {1000, 1000});
  PointQuadtree<2> ta(world);
  PointQuadtree<2> tb(world);
  for (size_t i = 0; i < a.size(); ++i) ta.Insert(a[i], i);
  for (size_t i = 0; i < b.size(); ++i) tb.Insert(b[i], i);
  const auto reference = BruteForcePairs(a, b);

  DistanceJoinOptions options;
  options.use_hybrid_queue = true;
  options.hybrid.tier_width = 25.0;
  DistanceJoin<2, PointQuadtree<2>> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
}

TEST(Interaction, ReverseJoinWithFilters) {
  const auto a = A(100, 783);
  const auto b = B(120, 784);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  JoinFilters<2> filters;
  filters.object_filter2 = [](ObjectId id) { return id % 2 == 0; };
  DistanceJoinOptions options;
  options.reverse_order = true;
  options.max_pairs = 20;
  DistanceJoin<2> join(ta, tb, options, filters);

  std::vector<double> reference;
  for (const auto& p : a) {
    for (size_t j = 0; j < b.size(); j += 2) {
      reference.push_back(Dist(p, b[j]));
    }
  }
  std::sort(reference.rbegin(), reference.rend());
  JoinResult<2> pair;
  for (size_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k], 1e-9) << k;
    EXPECT_EQ(pair.id2 % 2, 0u);
  }
}

}  // namespace
}  // namespace sdj
