#include "data/dataset_io.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace sdj::data {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DatasetIo, RoundTrip) {
  const std::string path = TempPath("roundtrip.csv");
  const std::vector<Point<2>> points = {
      {1.5, 2.5}, {-3.25, 0.0}, {1e-9, 12345678.9}};
  ASSERT_TRUE(SavePointsCsv(path, points));
  std::vector<Point<2>> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i][0], points[i][0]);
    EXPECT_DOUBLE_EQ(loaded[i][1], points[i][1]);
  }
}

TEST(DatasetIo, EmptyFileLoadsEmpty) {
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(SavePointsCsv(path, {}));
  std::vector<Point<2>> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  EXPECT_TRUE(loaded.empty());
}

TEST(DatasetIo, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header comment\n1,2\n\n3,4\n", f);
  std::fclose(f);
  std::vector<Point<2>> loaded;
  ASSERT_TRUE(LoadPointsCsv(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0], (Point<2>{1, 2}));
  EXPECT_EQ(loaded[1], (Point<2>{3, 4}));
}

TEST(DatasetIo, MalformedLineFails) {
  const std::string path = TempPath("malformed.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1,2\nnot-a-number\n3,4\n", f);
  std::fclose(f);
  std::vector<Point<2>> loaded;
  EXPECT_FALSE(LoadPointsCsv(path, &loaded));
  EXPECT_EQ(loaded.size(), 1u);  // the valid prefix
}

TEST(DatasetIo, MissingFileFails) {
  std::vector<Point<2>> loaded;
  EXPECT_FALSE(LoadPointsCsv(TempPath("does-not-exist.csv"), &loaded));
}

TEST(DatasetIo, MissingCommaFails) {
  const std::string path = TempPath("nocomma.csv");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("1 2\n", f);
  std::fclose(f);
  std::vector<Point<2>> loaded;
  EXPECT_FALSE(LoadPointsCsv(path, &loaded));
}

}  // namespace
}  // namespace sdj::data
