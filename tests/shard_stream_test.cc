// Sharded best-first execution (DESIGN.md §18): the sharded wrappers must be
// stream- AND stats-identical to the serial engines at every shard count, for
// all five policies, on raw and quantized trees. Also covers the k-way merge
// under a dead shard (kIoError with a valid serial prefix), merge-level
// suspend/resume, the max_pairs cap, and JoinStats::MergeFrom (the one
// sanctioned stats aggregation).
//
// Test names contain "ParallelJoin" so scripts/check.sh's TSan pass picks
// them up (the shard producers exercise concurrent engine execution over
// shared buffer pools).
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/env_knobs.h"
#include "core/join_stats.h"
#include "core/semi_join.h"
#include "core/shard_merge.h"
#include "core/within_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "nn/inc_farthest.h"
#include "nn/inc_nearest.h"
#include "nn/sharded_neighbor.h"
#include "rtree/rtree.h"
#include "storage/fault_injection.h"
#include "util/stop_token.h"

namespace sdj {
namespace {

const std::vector<Point<2>>& SetA() {
  static const auto* points = new std::vector<Point<2>>(
      data::GenerateUniform(600, Rect<2>({0, 0}, {100, 100}), 4201));
  return *points;
}

const std::vector<Point<2>>& SetB() {
  static const auto* points = new std::vector<Point<2>>(
      data::GenerateUniform(600, Rect<2>({0, 0}, {100, 100}), 4202));
  return *points;
}

template <typename Engine>
std::vector<JoinResult<2>> DrainPairs(Engine* join, uint64_t cap = 0) {
  std::vector<JoinResult<2>> out;
  JoinResult<2> pair;
  while ((cap == 0 || out.size() < cap) && join->Next(&pair)) {
    out.push_back(pair);
  }
  return out;
}

void ExpectSamePairs(const std::vector<JoinResult<2>>& expected,
                     const std::vector<JoinResult<2>>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].id1, actual[i].id1) << "pair " << i;
    ASSERT_EQ(expected[i].id2, actual[i].id2) << "pair " << i;
    ASSERT_EQ(expected[i].distance, actual[i].distance) << "pair " << i;
  }
}

// Every counter must match the serial engine's at exhaustion except
// max_queue_size (disjoint per-shard peaks; the merge reports their max) and
// parallel_expansions (an execution-strategy counter, already excluded from
// golden fixtures) — plus the two screening counters the goldens exclude.
void ExpectStatsIdentical(const JoinStats& serial, const JoinStats& sharded) {
  EXPECT_EQ(serial.pairs_reported, sharded.pairs_reported);
  EXPECT_EQ(serial.object_distance_calcs, sharded.object_distance_calcs);
  EXPECT_EQ(serial.total_distance_calcs, sharded.total_distance_calcs);
  EXPECT_EQ(serial.queue_pushes, sharded.queue_pushes);
  EXPECT_EQ(serial.queue_pops, sharded.queue_pops);
  EXPECT_EQ(serial.node_io, sharded.node_io);
  EXPECT_EQ(serial.node_accesses, sharded.node_accesses);
  EXPECT_EQ(serial.nodes_expanded, sharded.nodes_expanded);
  EXPECT_EQ(serial.pruned_by_range, sharded.pruned_by_range);
  EXPECT_EQ(serial.pruned_by_estimate, sharded.pruned_by_estimate);
  EXPECT_EQ(serial.pruned_by_bound, sharded.pruned_by_bound);
  EXPECT_EQ(serial.pruned_by_filter, sharded.pruned_by_filter);
  EXPECT_EQ(serial.filtered_reported, sharded.filtered_reported);
  EXPECT_EQ(serial.restarts, sharded.restarts);
  EXPECT_EQ(serial.io_retries, sharded.io_retries);
  EXPECT_EQ(serial.checksum_failures, sharded.checksum_failures);
  EXPECT_EQ(serial.spill_fallbacks, sharded.spill_fallbacks);
  EXPECT_EQ(serial.batch_kernel_invocations, sharded.batch_kernel_invocations);
}

constexpr int kShardCounts[] = {1, 2, 4, 7};

TEST(ShardedParallelJoin, DistanceJoinMatchesSerialAllShardCounts) {
  for (const NodeEncoding encoding :
       {NodeEncoding::kRaw, NodeEncoding::kQuantized}) {
    SCOPED_TRACE(encoding == NodeEncoding::kRaw ? "raw" : "quantized");
    DistanceJoinOptions serial_options;
    std::vector<JoinResult<2>> serial;
    JoinStats serial_stats;
    {
      // Fresh trees per run: node_io counts buffer misses, so reusing a
      // warmed pool would skew the pool-derived counters.
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      DistanceJoin<2> join(tree1, tree2, serial_options);
      serial = DrainPairs(&join);
      ASSERT_EQ(join.status(), JoinStatus::kExhausted);
      serial_stats = join.stats();
    }
    for (const int shards : kShardCounts) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      DistanceJoinOptions options;
      options.shards = shards;
      ShardedDistanceJoin<2> join(tree1, tree2, options);
      if (shards >= 2) {
        EXPECT_EQ(join.effective_shards(), shards);
      } else {
        EXPECT_EQ(join.effective_shards(), 1);
      }
      const auto sharded = DrainPairs(&join);
      EXPECT_EQ(join.status(), JoinStatus::kExhausted);
      ExpectSamePairs(serial, sharded);
      ExpectStatsIdentical(serial_stats, join.stats());
      if (shards >= 2) {
        EXPECT_EQ(join.shard_merge_pops(), sharded.size());
        EXPECT_EQ(join.shard_stats().size(),
                  static_cast<size_t>(join.effective_shards()));
      }
    }
  }
}

TEST(ShardedParallelJoin, HybridQueueAndRangeConfigsMatchSerial) {
  struct Config {
    const char* name;
    bool hybrid;
    double max_distance;
    int num_threads;
  };
  const Config configs[] = {
      {"hybrid", true, std::numeric_limits<double>::infinity(), 1},
      {"range", false, 5.0, 1},
      {"range_threads", false, 5.0, 2},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(config.name);
    DistanceJoinOptions base;
    base.use_hybrid_queue = config.hybrid;
    base.max_distance = config.max_distance;
    base.num_threads = config.num_threads;
    std::vector<JoinResult<2>> serial;
    JoinStats serial_stats;
    {
      RTree<2> tree1 = test::BuildPointTree(SetA());
      RTree<2> tree2 = test::BuildPointTree(SetB());
      DistanceJoin<2> join(tree1, tree2, base);
      serial = DrainPairs(&join);
      ASSERT_EQ(join.status(), JoinStatus::kExhausted);
      serial_stats = join.stats();
    }
    for (const int shards : {2, 4}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      RTree<2> tree1 = test::BuildPointTree(SetA());
      RTree<2> tree2 = test::BuildPointTree(SetB());
      DistanceJoinOptions options = base;
      options.shards = shards;
      ShardedDistanceJoin<2> join(tree1, tree2, options);
      const auto sharded = DrainPairs(&join);
      EXPECT_EQ(join.status(), JoinStatus::kExhausted);
      ExpectSamePairs(serial, sharded);
      ExpectStatsIdentical(serial_stats, join.stats());
    }
  }
}

TEST(ShardedParallelJoin, MaxPairsCapMatchesSerial) {
  DistanceJoinOptions base;
  base.max_pairs = 500;
  std::vector<JoinResult<2>> serial;
  {
    RTree<2> tree1 = test::BuildPointTree(SetA());
    RTree<2> tree2 = test::BuildPointTree(SetB());
    DistanceJoin<2> join(tree1, tree2, base);
    serial = DrainPairs(&join);
    ASSERT_EQ(join.status(), JoinStatus::kExhausted);
    ASSERT_EQ(serial.size(), 500u);
  }
  for (const int shards : {2, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RTree<2> tree1 = test::BuildPointTree(SetA());
    RTree<2> tree2 = test::BuildPointTree(SetB());
    DistanceJoinOptions options = base;
    options.shards = shards;
    ShardedDistanceJoin<2> join(tree1, tree2, options);
    const auto sharded = DrainPairs(&join);
    EXPECT_EQ(join.status(), JoinStatus::kExhausted);
    ExpectSamePairs(serial, sharded);
  }
}

// Ineligible configurations (estimator, reverse order, exact distances,
// object predicates) must degrade to one ordinary engine, not silently
// change the stream.
TEST(ShardedParallelJoin, IneligibleConfigsFallBackToPassthrough) {
  RTree<2> tree1 = test::BuildPointTree(SetA());
  RTree<2> tree2 = test::BuildPointTree(SetB());
  {
    DistanceJoinOptions options;
    options.shards = 4;
    options.reverse_order = true;
    ShardedDistanceJoin<2> join(tree1, tree2, options);
    EXPECT_EQ(join.effective_shards(), 1);
  }
  {
    DistanceJoinOptions options;
    options.shards = 4;
    options.max_pairs = 100;
    options.estimate_max_distance = true;
    ShardedDistanceJoin<2> join(tree1, tree2, options);
    EXPECT_EQ(join.effective_shards(), 1);
  }
  {
    DistanceJoinOptions options;
    options.shards = 4;
    options.exact_object_distance = [](ObjectId a, ObjectId b) {
      return Dist(SetA()[a], SetB()[b], Metric::kEuclidean);
    };
    ShardedDistanceJoin<2> join(tree1, tree2, options);
    EXPECT_EQ(join.effective_shards(), 1);
  }
  {
    DistanceJoinOptions options;
    options.shards = 4;
    JoinFilters<2> filters;
    filters.object_filter1 = [](ObjectId) { return true; };
    ShardedDistanceJoin<2> join(tree1, tree2, options, filters);
    EXPECT_EQ(join.effective_shards(), 1);
  }
}

// shards == 0 resolves through SDJ_SHARDS exactly like num_threads through
// SDJ_THREADS; whatever the environment selects, the stream is the serial
// one (this test runs under check.sh's SDJ_SHARDS=4 ctest pass too).
TEST(ShardedParallelJoin, ZeroShardsResolvesFromEnvironment) {
  std::vector<JoinResult<2>> serial;
  {
    RTree<2> tree1 = test::BuildPointTree(SetA());
    RTree<2> tree2 = test::BuildPointTree(SetB());
    DistanceJoin<2> join(tree1, tree2, DistanceJoinOptions{});
    serial = DrainPairs(&join);
  }
  RTree<2> tree1 = test::BuildPointTree(SetA());
  RTree<2> tree2 = test::BuildPointTree(SetB());
  DistanceJoinOptions options;
  options.shards = 0;
  ShardedDistanceJoin<2> join(tree1, tree2, options);
  EXPECT_EQ(join.effective_shards(), env_knobs::ResolveShards(0) >= 2
                                         ? env_knobs::ResolveShards(0)
                                         : 1);
  ExpectSamePairs(serial, DrainPairs(&join));
  EXPECT_EQ(join.status(), JoinStatus::kExhausted);
}

TEST(ShardedParallelJoin, WithinJoinMatchesSerialAllShardCounts) {
  for (const NodeEncoding encoding :
       {NodeEncoding::kRaw, NodeEncoding::kQuantized}) {
    SCOPED_TRACE(encoding == NodeEncoding::kRaw ? "raw" : "quantized");
    WithinJoinOptions base;
    base.epsilon = 2.0;
    std::vector<JoinResult<2>> serial;
    JoinStats serial_stats;
    {
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      IncWithinJoin<2> join(tree1, tree2, base);
      serial = DrainPairs(&join);
      ASSERT_EQ(join.status(), JoinStatus::kExhausted);
      serial_stats = join.stats();
    }
    for (const int shards : kShardCounts) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      WithinJoinOptions options = base;
      options.shards = shards;
      ShardedWithinJoin<2> join(tree1, tree2, options);
      const auto sharded = DrainPairs(&join);
      EXPECT_EQ(join.status(), JoinStatus::kExhausted);
      ExpectSamePairs(serial, sharded);
      ExpectStatsIdentical(serial_stats, join.stats());
    }
  }
}

TEST(ShardedParallelJoin, SemiJoinMatchesSerialAllFilters) {
  struct Config {
    const char* name;
    SemiJoinFilter filter;
    SemiJoinBound bound;
  };
  const Config configs[] = {
      {"outside", SemiJoinFilter::kOutside, SemiJoinBound::kNone},
      {"inside1", SemiJoinFilter::kInside1, SemiJoinBound::kNone},
      {"inside2_globalall", SemiJoinFilter::kInside2, SemiJoinBound::kGlobalAll},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(config.name);
    SemiJoinOptions base;
    base.filter = config.filter;
    base.bound = config.bound;
    std::vector<JoinResult<2>> serial;
    JoinStats serial_stats;
    {
      RTree<2> tree1 = test::BuildPointTree(SetA());
      RTree<2> tree2 = test::BuildPointTree(SetB());
      DistanceSemiJoin<2> semi(tree1, tree2, base);
      serial = DrainPairs(&semi);
      ASSERT_EQ(semi.status(), JoinStatus::kExhausted);
      ASSERT_EQ(serial.size(), SetA().size());
      serial_stats = semi.stats();
    }
    for (const int shards : {2, 4, 7}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      RTree<2> tree1 = test::BuildPointTree(SetA());
      RTree<2> tree2 = test::BuildPointTree(SetB());
      SemiJoinOptions options = base;
      options.join.shards = shards;
      ShardedDistanceSemiJoin<2> semi(tree1, tree2, options);
      const auto sharded = DrainPairs(&semi);
      EXPECT_EQ(semi.status(), JoinStatus::kExhausted);
      ExpectSamePairs(serial, sharded);
      ExpectStatsIdentical(serial_stats, semi.stats());
    }
  }
}

template <typename Engine>
std::vector<NeighborResult<2>> DrainNeighbors(Engine* nn, uint64_t cap = 0) {
  std::vector<NeighborResult<2>> out;
  NeighborResult<2> hit;
  while ((cap == 0 || out.size() < cap) && nn->Next(&hit)) {
    out.push_back(hit);
  }
  return out;
}

void ExpectSameNeighbors(const std::vector<NeighborResult<2>>& expected,
                         const std::vector<NeighborResult<2>>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i].id, actual[i].id) << "hit " << i;
    ASSERT_EQ(expected[i].distance, actual[i].distance) << "hit " << i;
  }
}

void ExpectNnStatsIdentical(const IncNearestStats& serial,
                            const IncNearestStats& sharded) {
  EXPECT_EQ(serial.distance_calcs, sharded.distance_calcs);
  EXPECT_EQ(serial.queue_pushes, sharded.queue_pushes);
  EXPECT_EQ(serial.nodes_expanded, sharded.nodes_expanded);
  EXPECT_EQ(serial.neighbors_reported, sharded.neighbors_reported);
  // max_queue_size deliberately excluded (per-shard peaks).
}

TEST(ShardedParallelJoin, NearestNeighborMatchesSerialAllShardCounts) {
  const Point<2> query{37.0, 61.0};
  std::vector<NeighborResult<2>> serial;
  IncNearestStats serial_stats;
  {
    RTree<2> tree = test::BuildPointTree(SetA());
    IncNearestNeighbor<2> nn(tree, query);
    serial = DrainNeighbors(&nn);
    ASSERT_EQ(nn.status(), JoinStatus::kExhausted);
    ASSERT_EQ(serial.size(), SetA().size());
    serial_stats = nn.stats();
  }
  for (const int shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RTree<2> tree = test::BuildPointTree(SetA());
    IncNeighborOptions options;
    options.shards = shards;
    ShardedIncNearest<2> nn(tree, query, options);
    const auto sharded = DrainNeighbors(&nn);
    EXPECT_EQ(nn.status(), JoinStatus::kExhausted);
    ExpectSameNeighbors(serial, sharded);
    ExpectNnStatsIdentical(serial_stats, nn.stats());
  }
}

TEST(ShardedParallelJoin, BoundedQuantizedNearestMatchesSerial) {
  const Point<2> query{37.0, 61.0};
  IncNeighborOptions base;
  base.max_distance = 15.0;
  std::vector<NeighborResult<2>> serial;
  {
    RTree<2> tree =
        test::BuildPointTree(SetA(), 512, true, NodeEncoding::kQuantized);
    IncNearestNeighbor<2> nn(tree, query, base);
    serial = DrainNeighbors(&nn);
    ASSERT_EQ(nn.status(), JoinStatus::kExhausted);
  }
  for (const int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RTree<2> tree =
        test::BuildPointTree(SetA(), 512, true, NodeEncoding::kQuantized);
    IncNeighborOptions options = base;
    options.shards = shards;
    ShardedIncNearest<2> nn(tree, query, options);
    const auto sharded = DrainNeighbors(&nn);
    EXPECT_EQ(nn.status(), JoinStatus::kExhausted);
    ExpectSameNeighbors(serial, sharded);
  }
}

// Farthest-first: the merge runs with the descending comparator — each
// shard's head upper-bounds its remainder.
TEST(ShardedParallelJoin, FarthestNeighborMatchesSerialAllShardCounts) {
  const Point<2> query{37.0, 61.0};
  std::vector<NeighborResult<2>> serial;
  IncNearestStats serial_stats;
  {
    RTree<2> tree = test::BuildPointTree(SetA());
    IncFarthestNeighbor<2> nn(tree, query);
    serial = DrainNeighbors(&nn);
    ASSERT_EQ(nn.status(), JoinStatus::kExhausted);
    ASSERT_EQ(serial.size(), SetA().size());
    serial_stats = nn.stats();
  }
  for (const int shards : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RTree<2> tree = test::BuildPointTree(SetA());
    IncNeighborOptions options;
    options.shards = shards;
    ShardedIncFarthest<2> nn(tree, query, options);
    const auto sharded = DrainNeighbors(&nn);
    EXPECT_EQ(nn.status(), JoinStatus::kExhausted);
    ExpectSameNeighbors(serial, sharded);
    ExpectNnStatsIdentical(serial_stats, nn.stats());
  }
}

// ---- dead-shard semantics ---------------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void BuildTreeFile(const std::string& path,
                   const std::vector<Point<2>>& points) {
  RTreeOptions options;
  options.page_size = 512;
  options.file_path = path;
  RTree<2> tree(options);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  ASSERT_TRUE(tree.Flush());
}

std::unique_ptr<RTree<2>> OpenFaulty(
    const std::string& path,
    const std::optional<storage::FaultInjectionOptions>& faults) {
  RTreeOptions options;
  options.page_size = 512;
  options.file_path = path;
  options.buffer_pages = 8;
  options.fault_injection = faults;
  options.retry = storage::RetryPolicy{};
  options.retry.backoff_us = 0;
  options.retry.max_attempts = 2;
  return RTree<2>::Open(options);
}

// One dead disk under a sharded join: the merge must emit a correctly
// ordered prefix of the serial stream (everything strictly below the failed
// shards' last produced keys) and then surface kIoError, exactly like a
// serial engine's I/O stop. SaveState must refuse the dead cursor.
TEST(ShardedParallelJoin, DeadShardYieldsSerialPrefixThenIoError) {
  const std::string path_a = TempPath("shard_dead_a.pages");
  const std::string path_b = TempPath("shard_dead_b.pages");
  BuildTreeFile(path_a, SetA());
  BuildTreeFile(path_b, SetB());

  std::vector<JoinResult<2>> clean;
  {
    auto ta = OpenFaulty(path_a, std::nullopt);
    auto tb = OpenFaulty(path_b, std::nullopt);
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    DistanceJoinOptions options;
    options.max_pairs = 2000;
    DistanceJoin<2> join(*ta, *tb, options);
    clean = DrainPairs(&join);
    ASSERT_EQ(join.status(), JoinStatus::kExhausted);
  }

  storage::FaultInjectionOptions faults;
  faults.hard_read_after = 60;  // survives Open and the plan, dies mid-join
  auto ta = OpenFaulty(path_a, faults);
  auto tb = OpenFaulty(path_b, std::nullopt);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  DistanceJoinOptions options;
  options.max_pairs = 2000;
  options.shards = 4;
  ShardedDistanceJoin<2> join(*ta, *tb, options);
  ASSERT_EQ(join.effective_shards(), 4);
  const auto partial = DrainPairs(&join);

  EXPECT_EQ(join.status(), JoinStatus::kIoError);
  ASSERT_LT(partial.size(), clean.size());
  ExpectSamePairs(
      std::vector<JoinResult<2>>(clean.begin(),
                                 clean.begin() +
                                     static_cast<ptrdiff_t>(partial.size())),
      partial);

  snapshot::Blob blob;
  EXPECT_FALSE(join.SaveState(&blob));
}

// ---- merge-level suspend/resume ---------------------------------------------

TEST(ShardedParallelJoin, SuspendSaveRestoreResumeIsIdentical) {
  // No max_pairs cap: stats identity holds at exhaustion (mid-stream, shard
  // lookahead legitimately runs a few expansions ahead of the serial stop).
  DistanceJoinOptions base;
  std::vector<JoinResult<2>> serial;
  JoinStats serial_stats;
  {
    RTree<2> tree1 = test::BuildPointTree(SetA());
    RTree<2> tree2 = test::BuildPointTree(SetB());
    DistanceJoin<2> join(tree1, tree2, base);
    serial = DrainPairs(&join);
    ASSERT_EQ(join.status(), JoinStatus::kExhausted);
    serial_stats = join.stats();
  }

  RTree<2> tree1 = test::BuildPointTree(SetA());
  RTree<2> tree2 = test::BuildPointTree(SetB());
  util::StopSource source;
  DistanceJoinOptions options = base;
  options.shards = 4;
  options.stop_token = source.token();
  ShardedDistanceJoin<2> join(tree1, tree2, options);
  ASSERT_EQ(join.effective_shards(), 4);

  std::vector<JoinResult<2>> stream = DrainPairs(&join, 100);
  ASSERT_EQ(stream.size(), 100u);
  source.RequestStop();
  JoinResult<2> pair;
  ASSERT_FALSE(join.Next(&pair));
  ASSERT_EQ(join.status(), JoinStatus::kSuspended);

  snapshot::Blob blob;
  ASSERT_TRUE(join.SaveState(&blob));

  // A freshly planned wrapper over the same trees adopts the snapshot; its
  // continuation must be stream- and stats-identical to an uninterrupted
  // run.
  DistanceJoinOptions resumed_options = base;
  resumed_options.shards = 4;
  ShardedDistanceJoin<2> resumed(tree1, tree2, resumed_options);
  ASSERT_EQ(resumed.effective_shards(), 4);
  snapshot::BlobReader reader(blob.data(), blob.size());
  ASSERT_TRUE(resumed.RestoreState(&reader));
  ASSERT_EQ(resumed.status(), JoinStatus::kSuspended);
  resumed.ResumeSuspended();
  ASSERT_EQ(resumed.status(), JoinStatus::kOk);

  for (const JoinResult<2>& rest : DrainPairs(&resumed)) {
    stream.push_back(rest);
  }
  EXPECT_EQ(resumed.status(), JoinStatus::kExhausted);
  ExpectSamePairs(serial, stream);
  // pairs_reported is wrapper-level and the snapshot carries the merge
  // cursor, so the resumed totals match the uninterrupted serial run except
  // node_io/node_accesses: the resumed wrapper re-reads pages the first
  // wrapper had already paid for (its buffer pool does not roll back), so
  // those two are compared as >= instead.
  EXPECT_EQ(serial_stats.pairs_reported, resumed.stats().pairs_reported);
  EXPECT_EQ(serial_stats.queue_pops, resumed.stats().queue_pops);
  EXPECT_EQ(serial_stats.nodes_expanded, resumed.stats().nodes_expanded);
  EXPECT_EQ(serial_stats.object_distance_calcs,
            resumed.stats().object_distance_calcs);
  EXPECT_GE(resumed.stats().node_accesses, serial_stats.node_accesses);
}

// Sharded NN wrappers keep the historical NN semantics: a suspended stream
// self-clears at the next Next().
TEST(ShardedParallelJoin, NearestAutoResumesAfterSuspension) {
  RTree<2> tree = test::BuildPointTree(SetA());
  util::StopSource source;
  IncNeighborOptions options;
  options.shards = 4;
  options.stop_token = source.token();
  ShardedIncNearest<2> nn(tree, {37.0, 61.0}, options);
  ASSERT_EQ(nn.effective_shards(), 4);

  std::vector<NeighborResult<2>> stream = DrainNeighbors(&nn, 50);
  ASSERT_EQ(stream.size(), 50u);
  source.RequestStop();
  NeighborResult<2> hit;
  ASSERT_FALSE(nn.Next(&hit));
  ASSERT_EQ(nn.status(), JoinStatus::kSuspended);
  EXPECT_TRUE(nn.suspended());
  source.Clear();
  for (const NeighborResult<2>& rest : DrainNeighbors(&nn)) {
    stream.push_back(rest);
  }
  EXPECT_EQ(nn.status(), JoinStatus::kExhausted);

  RTree<2> fresh = test::BuildPointTree(SetA());
  IncNearestNeighbor<2> serial(fresh, {37.0, 61.0});
  ExpectSameNeighbors(DrainNeighbors(&serial), stream);
}

// ---- JoinStats::MergeFrom ---------------------------------------------------

// MergeFrom is the one sanctioned stats aggregation (shard merge, bench
// reporting): every counter sums, max_queue_size takes the max. An ad-hoc
// field-by-field sum that treated the peak as additive would fail here.
TEST(JoinStatsMergeFrom, SumsCountersAndMaxesPeak) {
  JoinStats a;
  a.pairs_reported = 1;
  a.object_distance_calcs = 2;
  a.total_distance_calcs = 3;
  a.queue_pushes = 4;
  a.queue_pops = 5;
  a.max_queue_size = 600;
  a.node_io = 7;
  a.node_accesses = 8;
  a.nodes_expanded = 9;
  a.pruned_by_range = 10;
  a.pruned_by_estimate = 11;
  a.pruned_by_bound = 12;
  a.pruned_by_filter = 13;
  a.filtered_reported = 14;
  a.restarts = 15;
  a.io_retries = 16;
  a.checksum_failures = 17;
  a.spill_fallbacks = 18;
  a.batch_kernel_invocations = 19;
  a.parallel_expansions = 20;
  a.screened_candidates = 21;
  a.screen_survivors = 22;

  JoinStats b;
  b.pairs_reported = 100;
  b.object_distance_calcs = 101;
  b.total_distance_calcs = 102;
  b.queue_pushes = 103;
  b.queue_pops = 104;
  b.max_queue_size = 105;
  b.node_io = 106;
  b.node_accesses = 107;
  b.nodes_expanded = 108;
  b.pruned_by_range = 109;
  b.pruned_by_estimate = 110;
  b.pruned_by_bound = 111;
  b.pruned_by_filter = 112;
  b.filtered_reported = 113;
  b.restarts = 114;
  b.io_retries = 115;
  b.checksum_failures = 116;
  b.spill_fallbacks = 117;
  b.batch_kernel_invocations = 118;
  b.parallel_expansions = 119;
  b.screened_candidates = 120;
  b.screen_survivors = 121;

  a.MergeFrom(b);
  EXPECT_EQ(a.pairs_reported, 101u);
  EXPECT_EQ(a.object_distance_calcs, 103u);
  EXPECT_EQ(a.total_distance_calcs, 105u);
  EXPECT_EQ(a.queue_pushes, 107u);
  EXPECT_EQ(a.queue_pops, 109u);
  EXPECT_EQ(a.max_queue_size, 600u);  // max, not sum
  EXPECT_EQ(a.node_io, 113u);
  EXPECT_EQ(a.node_accesses, 115u);
  EXPECT_EQ(a.nodes_expanded, 117u);
  EXPECT_EQ(a.pruned_by_range, 119u);
  EXPECT_EQ(a.pruned_by_estimate, 121u);
  EXPECT_EQ(a.pruned_by_bound, 123u);
  EXPECT_EQ(a.pruned_by_filter, 125u);
  EXPECT_EQ(a.filtered_reported, 127u);
  EXPECT_EQ(a.restarts, 129u);
  EXPECT_EQ(a.io_retries, 131u);
  EXPECT_EQ(a.checksum_failures, 133u);
  EXPECT_EQ(a.spill_fallbacks, 135u);
  EXPECT_EQ(a.batch_kernel_invocations, 137u);
  EXPECT_EQ(a.parallel_expansions, 139u);
  EXPECT_EQ(a.screened_candidates, 141u);
  EXPECT_EQ(a.screen_survivors, 143u);

  // Merging a default (all-zero) stats must be the identity.
  const JoinStats snapshot = a;
  a.MergeFrom(JoinStats{});
  EXPECT_EQ(a.max_queue_size, snapshot.max_queue_size);
  EXPECT_EQ(a.pairs_reported, snapshot.pairs_reported);
}

}  // namespace
}  // namespace sdj
