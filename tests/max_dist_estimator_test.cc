#include "core/max_dist_estimator.h"

#include <limits>

#include <gtest/gtest.h>

namespace sdj {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

MaxDistEstimator::PairKey Key(uint64_t a, uint64_t b) {
  return MaxDistEstimator::PairKey{a, b};
}

TEST(EncodeEstimatorItem, DistinguishesKindLevelRef) {
  const uint64_t node = EncodeEstimatorItem(0, 3, 17);
  const uint64_t object = EncodeEstimatorItem(2, -1, 17);
  const uint64_t other_ref = EncodeEstimatorItem(0, 3, 18);
  const uint64_t other_level = EncodeEstimatorItem(0, 2, 17);
  EXPECT_NE(node, object);
  EXPECT_NE(node, other_ref);
  EXPECT_NE(node, other_level);
}

TEST(MaxDistEstimator, NoTighteningUntilBudgetCovered) {
  MaxDistEstimator est(/*k=*/100, kInf, /*semi_join=*/false);
  est.OnEnqueue(Key(1, 2), 0.0, 10.0, 50, 0.0);
  EXPECT_EQ(est.max_distance(), kInf);
  EXPECT_FALSE(est.ever_tightened());
}

TEST(MaxDistEstimator, TightensToLastRemovedDmax) {
  MaxDistEstimator est(/*k=*/100, kInf, /*semi_join=*/false);
  est.OnEnqueue(Key(1, 1), 0.0, 5.0, 80, 0.0);
  EXPECT_EQ(est.max_distance(), kInf);  // 80 <= 100: nothing guaranteed yet
  est.OnEnqueue(Key(2, 2), 0.0, 8.0, 40, 0.0);
  // Sum = 120 > 100: all 120 results lie within d_max 8.0, so the 100th
  // closest does too. The (8.0, 40) pair is dropped and D_max := 8.0.
  EXPECT_DOUBLE_EQ(est.max_distance(), 8.0);
  EXPECT_TRUE(est.ever_tightened());
  est.OnEnqueue(Key(3, 3), 0.0, 3.0, 60, 0.0);
  // Sum = 140 > 100: drop (5.0, 80), D_max := 5.0; remaining 60 <= 100.
  EXPECT_DOUBLE_EQ(est.max_distance(), 5.0);
  EXPECT_EQ(est.set_size(), 1u);
}

TEST(MaxDistEstimator, IneligiblePairsIgnored) {
  MaxDistEstimator est(/*k=*/10, /*initial_max=*/5.0, /*semi_join=*/false);
  // dmax above the current bound: not eligible.
  est.OnEnqueue(Key(1, 1), 0.0, 7.0, 100, 0.0);
  EXPECT_EQ(est.set_size(), 0u);
  // d below the query minimum: not eligible.
  est.OnEnqueue(Key(2, 2), 0.5, 3.0, 100, /*query_min=*/1.0);
  EXPECT_EQ(est.set_size(), 0u);
  // Eligible: 100 > 10 guaranteed results within 3.0 => D_max := 3.0 and the
  // pair itself is trimmed away.
  est.OnEnqueue(Key(3, 3), 1.5, 3.0, 100, /*query_min=*/1.0);
  EXPECT_EQ(est.set_size(), 0u);
  EXPECT_DOUBLE_EQ(est.max_distance(), 3.0);
}

TEST(MaxDistEstimator, DequeueRemovesFromSet) {
  MaxDistEstimator est(/*k=*/100, kInf, /*semi_join=*/false);
  est.OnEnqueue(Key(1, 1), 0.0, 5.0, 50, 0.0);
  est.OnEnqueue(Key(2, 2), 0.0, 6.0, 30, 0.0);
  EXPECT_EQ(est.set_size(), 2u);
  est.OnDequeue(Key(1, 1));
  EXPECT_EQ(est.set_size(), 1u);
  est.OnDequeue(Key(9, 9));  // unknown pair: no-op
  EXPECT_EQ(est.set_size(), 1u);
}

TEST(MaxDistEstimator, ReportShrinksBudgetAndRetightens) {
  MaxDistEstimator est(/*k=*/3, kInf, /*semi_join=*/false);
  est.OnEnqueue(Key(1, 1), 0.0, 2.0, 2, 0.0);
  EXPECT_EQ(est.max_distance(), kInf);  // 2 <= 3
  est.OnEnqueue(Key(2, 2), 0.0, 4.0, 2, 0.0);
  // Sum=4 > 3 => drop (4.0, 2), D_max := 4.0, remaining sum 2 <= 3.
  EXPECT_DOUBLE_EQ(est.max_distance(), 4.0);
  est.OnReportJoin();  // budget 2; sum 2 <= 2: no further tightening
  EXPECT_DOUBLE_EQ(est.max_distance(), 4.0);
  est.OnReportJoin();  // budget 1; sum 2 > 1 => drop (2.0, 2), D_max := 2.0
  EXPECT_DOUBLE_EQ(est.max_distance(), 2.0);
}

TEST(MaxDistEstimator, BudgetExhaustionClearsSet) {
  MaxDistEstimator est(/*k=*/1, kInf, /*semi_join=*/false);
  est.OnEnqueue(Key(1, 1), 0.0, 2.0, 5, 0.0);
  EXPECT_DOUBLE_EQ(est.max_distance(), 2.0);
  est.OnReportJoin();
  EXPECT_EQ(est.set_size(), 0u);
}

TEST(MaxDistEstimator, SemiUniqueFirstKeepsSmallerDmax) {
  MaxDistEstimator est(/*k=*/100, kInf, /*semi_join=*/true);
  est.OnEnqueue(Key(7, 1), 0.0, 9.0, 20, 0.0);
  EXPECT_EQ(est.set_size(), 1u);
  // Same first item with larger dmax: ignored.
  est.OnEnqueue(Key(7, 2), 0.0, 12.0, 20, 0.0);
  EXPECT_EQ(est.set_size(), 1u);
  // Same first item with smaller dmax: replaces.
  est.OnEnqueue(Key(7, 3), 0.0, 4.0, 20, 0.0);
  EXPECT_EQ(est.set_size(), 1u);
  // Another first item is fine. Sum=110 > 100 => the larger-d_max pair
  // (5.0, 90) is trimmed and D_max := 5.0.
  est.OnEnqueue(Key(8, 3), 0.0, 5.0, 90, 0.0);
  EXPECT_EQ(est.set_size(), 1u);
  EXPECT_DOUBLE_EQ(est.max_distance(), 5.0);
}

TEST(MaxDistEstimator, SemiProcessedNodesAreRefused) {
  MaxDistEstimator est(/*k=*/100, kInf, /*semi_join=*/true);
  est.OnEnqueue(Key(7, 1), 0.0, 9.0, 20, 0.0);
  est.MarkFirstItemProcessed(7);
  EXPECT_EQ(est.set_size(), 0u);  // existing entry dropped
  est.OnEnqueue(Key(7, 2), 0.0, 1.0, 20, 0.0);
  EXPECT_EQ(est.set_size(), 0u);  // refused after processing
  est.OnEnqueue(Key(8, 2), 0.0, 1.0, 20, 0.0);
  EXPECT_EQ(est.set_size(), 1u);
}

TEST(MaxDistEstimator, SemiReportRemovesFirstItemEntry) {
  MaxDistEstimator est(/*k=*/10, kInf, /*semi_join=*/true);
  est.OnEnqueue(Key(7, 1), 0.0, 9.0, 4, 0.0);
  est.OnEnqueue(Key(8, 1), 0.0, 3.0, 4, 0.0);
  EXPECT_EQ(est.set_size(), 2u);
  est.OnReportSemi(7);
  EXPECT_EQ(est.set_size(), 1u);
  est.OnReportSemi(99);  // unknown first item: budget still shrinks
  EXPECT_EQ(est.set_size(), 1u);
}

TEST(MaxDistEstimator, SemiTightensWithUniqueFirsts) {
  MaxDistEstimator est(/*k=*/5, kInf, /*semi_join=*/true);
  est.OnEnqueue(Key(1, 1), 0.0, 1.0, 3, 0.0);
  EXPECT_EQ(est.max_distance(), kInf);  // 3 <= 5
  est.OnEnqueue(Key(2, 1), 0.0, 2.0, 3, 0.0);
  // Sum=6 > 5 => drop (2.0, 3), D_max := 2.0.
  EXPECT_DOUBLE_EQ(est.max_distance(), 2.0);
  // A later pair whose d_max exceeds the new bound is ineligible.
  est.OnEnqueue(Key(3, 1), 0.0, 3.0, 4, 0.0);
  EXPECT_DOUBLE_EQ(est.max_distance(), 2.0);
  EXPECT_EQ(est.set_size(), 1u);
}

}  // namespace
}  // namespace sdj
