// Seeded fuzz sweep for the hybrid queue: random tier widths, page sizes,
// and consistency-respecting push/pop interleavings, checked against a
// reference heap. Guards the integer-bucket-frontier logic (a float-drift
// tier bug was found here once; see CLAUDE.md).
#include <algorithm>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "core/hybrid_queue.h"
#include "core/pair_entry.h"
#include "sdjoin.h"
#include "util/rng.h"

namespace sdj {
namespace {

PairEntry<2> Entry(double distance, uint64_t seq) {
  PairEntry<2> e;
  e.key = distance;
  e.distance = distance;
  e.seq = seq;
  e.item1.kind = JoinItemKind::kObject;
  e.item1.ref = seq;
  FinalizePairMetadata(&e);
  return e;
}

class HybridQueueFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, HybridQueueFuzz,
                         ::testing::Range<uint64_t>(1, 9));

TEST_P(HybridQueueFuzz, InterleavedOperationsMatchReferenceHeap) {
  Rng rng(GetParam() * 104729);
  HybridQueueOptions options;
  // Random, often awkward tier widths (including irrational-ish fractions
  // that stress the boundary arithmetic).
  options.tier_width = rng.Uniform(0.001, 500.0);
  options.page_size = 256u << rng.NextBounded(4);  // 256..2048
  options.buffer_pages = 4 + static_cast<uint32_t>(rng.NextBounded(12));
  HybridPairQueue<2> queue(PairEntryCompare<2>{}, options);

  std::priority_queue<double, std::vector<double>, std::greater<>> reference;
  double last_pop = 0.0;
  uint64_t seq = 0;
  const int rounds = 4000;
  for (int round = 0; round < rounds; ++round) {
    if (reference.empty() || rng.NextDouble() < 0.55) {
      // The join's consistency property: pushes are >= the last popped
      // distance (children never undercut their generating pair).
      const double d = last_pop + rng.Uniform(0.0, 800.0);
      queue.Push(Entry(d, seq++));
      reference.push(d);
    } else {
      ASSERT_FALSE(queue.Empty());
      ASSERT_DOUBLE_EQ(queue.Top().distance, reference.top());
      const PairEntry<2> popped = queue.Pop();
      ASSERT_DOUBLE_EQ(popped.distance, reference.top());
      last_pop = popped.distance;
      reference.pop();
    }
    ASSERT_EQ(queue.Size(), reference.size());
    if (round % 256 == 0) {
      // Spill-page accounting: no page is ever untracked.
      const SpillPageStats s = queue.spill_pages();
      ASSERT_EQ(s.allocated, s.live + s.free + s.abandoned);
    }
  }
  // Drain fully.
  while (!reference.empty()) {
    ASSERT_FALSE(queue.Empty());
    ASSERT_DOUBLE_EQ(queue.Pop().distance, reference.top());
    reference.pop();
  }
  EXPECT_TRUE(queue.Empty());
}

TEST_P(HybridQueueFuzz, BoundaryDistancesExactMultiplesOfTierWidth) {
  // Distances landing exactly on bucket boundaries are the historical
  // failure mode; push many of them interleaved with near-boundary values.
  Rng rng(GetParam() * 7001);
  HybridQueueOptions options;
  options.tier_width = 3.7;
  options.page_size = 512;
  HybridPairQueue<2> queue(PairEntryCompare<2>{}, options);
  std::vector<double> values;
  uint64_t seq = 0;
  for (int k = 0; k < 60; ++k) {
    const double boundary = k * options.tier_width;
    for (double delta : {0.0, 1e-12, -1e-12, 1e-6}) {
      const double d = std::max(0.0, boundary + delta);
      values.push_back(d);
      queue.Push(Entry(d, seq++));
    }
    const double inside = boundary + rng.Uniform(0.0, options.tier_width);
    values.push_back(inside);
    queue.Push(Entry(inside, seq++));
  }
  std::sort(values.begin(), values.end());
  for (double expected : values) {
    ASSERT_FALSE(queue.Empty());
    ASSERT_DOUBLE_EQ(queue.Pop().distance, expected);
  }
  EXPECT_TRUE(queue.Empty());
}

TEST(UmbrellaHeader, EverythingCompilesAndLinksTogether) {
  // sdjoin.h pulls in the whole API; instantiate a little of everything.
  RTree<2> tree;
  tree.Insert(Rect<2>::FromPoint({1, 2}), 0);
  EXPECT_EQ(KNearest(tree, Point<2>{0, 0}, 1).size(), 1u);
  PointQuadtree<2> qt(Rect<2>({0, 0}, {10, 10}));
  qt.Insert(Point<2>{5, 5}, 0);
  EXPECT_EQ(qt.size(), 1u);
  EXPECT_GT(Dist(Segment<2>{{0, 0}, {1, 0}}, Segment<2>{{0, 2}, {1, 2}}),
            1.9);
}

}  // namespace
}  // namespace sdj
