// Tests for the observability layer (DESIGN.md §12): latency histograms,
// merge determinism, PhaseTimer, the Chrome-trace sink, and the engine
// determinism contract (metrics must never change the pair stream, and
// parallel runs must record the serial run's event counts).
#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "join_test_util.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace sdj {
namespace {

using obs::HistogramSummary;
using obs::LatencyHistogram;
using obs::Metrics;
using obs::MetricsSummary;
using obs::Op;
using obs::PhaseTimer;
using obs::TraceSink;

TEST(LatencyHistogram, EmptySummaryIsAllZero) {
  LatencyHistogram h;
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.total_ns, 0u);
  EXPECT_EQ(s.p50_ns, 0u);
  EXPECT_EQ(s.p95_ns, 0u);
  EXPECT_EQ(s.p99_ns, 0u);
  EXPECT_EQ(s.max_ns, 0u);
}

TEST(LatencyHistogram, BasicCountsAndBounds) {
  LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total_ns(), 1001u);
  EXPECT_EQ(h.max_ns(), 1000u);
  const HistogramSummary s = h.Summary();
  // Percentiles are bucket upper bounds capped at the exact max: the p50
  // element (rank 2) is the 1-ns recording, whose bucket tops out at 1.
  EXPECT_EQ(s.p50_ns, 1u);
  EXPECT_EQ(s.p99_ns, 1000u);  // capped at max, not bucket upper 1023
  EXPECT_EQ(s.max_ns, 1000u);
}

TEST(LatencyHistogram, SingleValuePercentilesEqualThatValue) {
  LatencyHistogram h;
  h.Record(12345);
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.p50_ns, 12345u);
  EXPECT_EQ(s.p95_ns, 12345u);
  EXPECT_EQ(s.p99_ns, 12345u);
  EXPECT_EQ(s.max_ns, 12345u);
}

TEST(LatencyHistogram, MergeIsOrderIndependent) {
  // The same recordings, sharded two different ways and merged in two
  // different orders, must produce bit-identical summaries — this is what
  // lets a parallel engine merge per-worker histograms deterministically.
  Rng rng(42);
  std::vector<uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(rng.NextBounded(1u << 20));
  }
  LatencyHistogram serial;
  for (uint64_t v : values) serial.Record(v);

  LatencyHistogram shards[4];
  for (size_t i = 0; i < values.size(); ++i) {
    shards[i % 4].Record(values[i]);
  }
  LatencyHistogram forward;
  for (int i = 0; i < 4; ++i) forward.MergeFrom(shards[i]);
  LatencyHistogram backward;
  for (int i = 3; i >= 0; --i) backward.MergeFrom(shards[i]);

  const HistogramSummary a = serial.Summary();
  const HistogramSummary b = forward.Summary();
  const HistogramSummary c = backward.Summary();
  for (const HistogramSummary* s : {&b, &c}) {
    EXPECT_EQ(s->count, a.count);
    EXPECT_EQ(s->total_ns, a.total_ns);
    EXPECT_EQ(s->p50_ns, a.p50_ns);
    EXPECT_EQ(s->p95_ns, a.p95_ns);
    EXPECT_EQ(s->p99_ns, a.p99_ns);
    EXPECT_EQ(s->max_ns, a.max_ns);
  }
}

TEST(LatencyHistogram, ConcurrentRecordMatchesSerial) {
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 40000; ++i) {
    values.push_back(rng.NextBounded(1u << 24));
  }
  LatencyHistogram serial;
  for (uint64_t v : values) serial.Record(v);

  LatencyHistogram concurrent;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&concurrent, &values, t] {
      for (size_t i = t; i < values.size(); i += 4) {
        concurrent.Record(values[i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  const HistogramSummary a = serial.Summary();
  const HistogramSummary b = concurrent.Summary();
  EXPECT_EQ(b.count, a.count);
  EXPECT_EQ(b.total_ns, a.total_ns);
  EXPECT_EQ(b.p50_ns, a.p50_ns);
  EXPECT_EQ(b.p95_ns, a.p95_ns);
  EXPECT_EQ(b.p99_ns, a.p99_ns);
  EXPECT_EQ(b.max_ns, a.max_ns);
}

TEST(PhaseTimer, NullMetricsIsANoOp) {
  PhaseTimer timer(nullptr, Op::kExpansion);
  timer.Stop();  // must not crash; also exercises idempotent Stop
}

TEST(PhaseTimer, RecordsExactlyOnce) {
  Metrics metrics;
  {
    PhaseTimer timer(&metrics, Op::kRefill);
    timer.Stop();
    timer.Stop();  // idempotent
  }                // destructor must not double-record
  EXPECT_EQ(metrics.hist(Op::kRefill).count(), 1u);
  EXPECT_EQ(metrics.hist(Op::kExpansion).count(), 0u);
}

TEST(PhaseTimer, FeedsTraceSink) {
  TraceSink sink;
  Metrics metrics;
  metrics.set_trace(&sink);
  { PhaseTimer timer(&metrics, Op::kSpill); }
  { PhaseTimer timer(&metrics, Op::kCheckpoint); }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, BoundedBufferCountsDrops) {
  TraceSink sink(/*max_events=*/2);
  sink.AddComplete("a", 0, 10);
  sink.AddComplete("b", 10, 10);
  sink.AddComplete("c", 20, 10);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(TraceSink, WriteJsonEmitsChromeTraceSchema) {
  TraceSink sink;
  const uint64_t now = obs::MonotonicNowNs();
  sink.AddComplete("expansion", now, 1500);
  sink.AddComplete("page_read", now + 2000, 800);
  const std::string path = ::testing::TempDir() + "/sdj_trace_test.json";
  ASSERT_TRUE(sink.WriteJson(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);

  // The keys chrome://tracing / Perfetto require of a JSON-object trace.
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(content.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(content.find("\"name\": \"expansion\""), std::string::npos);
  EXPECT_NE(content.find("\"name\": \"page_read\""), std::string::npos);
  EXPECT_NE(content.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_NE(content.find("\"ts\": "), std::string::npos);
  EXPECT_NE(content.find("\"dur\": "), std::string::npos);
  // Exactly two events: one comma-separated pair, no trailing comma.
  EXPECT_EQ(std::count(content.begin(), content.end(), '{'),
            4);  // root, otherData, two events
}

// --- engine integration: metrics must never change the join's output ---

std::vector<Point<2>> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point<2>> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0.0, 1000.0), rng.Uniform(0.0, 1000.0)});
  }
  return points;
}

struct JoinRun {
  std::vector<JoinResult<2>> pairs;
  JoinStats stats;
  MetricsSummary metrics;
};

JoinRun RunJoin(const RTree<2>& a, const RTree<2>& b, int threads,
                bool with_metrics) {
  Metrics metrics;
  DistanceJoinOptions options;
  options.node_policy = NodeProcessingPolicy::kSimultaneous;
  options.num_threads = threads;
  options.max_pairs = 3000;
  if (with_metrics) options.metrics = &metrics;
  DistanceJoin<2> join(a, b, options);
  JoinRun run;
  JoinResult<2> pair;
  while (join.Next(&pair)) run.pairs.push_back(pair);
  run.stats = join.stats();
  run.metrics = metrics.Summary();
  return run;
}

void ExpectSameStream(const JoinRun& a, const JoinRun& b) {
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].id1, b.pairs[i].id1) << "pair " << i;
    EXPECT_EQ(a.pairs[i].id2, b.pairs[i].id2) << "pair " << i;
    EXPECT_DOUBLE_EQ(a.pairs[i].distance, b.pairs[i].distance) << "pair " << i;
  }
}

TEST(ObsEngine, MetricsDoNotChangeThePairStreamOrStats) {
  const RTree<2> ta = test::BuildPointTree(RandomPoints(600, 1));
  const RTree<2> tb = test::BuildPointTree(RandomPoints(600, 2));
  const JoinRun off = RunJoin(ta, tb, 1, /*with_metrics=*/false);
  const JoinRun on = RunJoin(ta, tb, 1, /*with_metrics=*/true);
  ExpectSameStream(off, on);
  EXPECT_EQ(off.stats.node_io, on.stats.node_io);
  EXPECT_EQ(off.stats.queue_pushes, on.stats.queue_pushes);
  EXPECT_GT(on.metrics.of(Op::kExpansion).count, 0u);
  EXPECT_EQ(off.metrics.of(Op::kExpansion).count, 0u);
}

TEST(ObsEngine, ParallelRunRecordsSerialEventCounts) {
  // The determinism contract: a parallel run's pair stream, stats, and
  // *recorded event counts* are identical to the serial run's (durations of
  // course differ). Workers never hold timers — only the serial merge path
  // records — so the histogram counts must match exactly.
  const RTree<2> ta = test::BuildPointTree(RandomPoints(600, 3));
  const RTree<2> tb = test::BuildPointTree(RandomPoints(600, 4));
  const JoinRun serial = RunJoin(ta, tb, 1, /*with_metrics=*/true);
  const JoinRun parallel = RunJoin(ta, tb, 4, /*with_metrics=*/true);
  ExpectSameStream(serial, parallel);
  EXPECT_EQ(serial.stats.node_io, parallel.stats.node_io);
  EXPECT_EQ(serial.stats.nodes_expanded, parallel.stats.nodes_expanded);
  EXPECT_EQ(serial.stats.queue_pushes, parallel.stats.queue_pushes);
  for (int i = 0; i < obs::kNumOps; ++i) {
    const Op op = static_cast<Op>(i);
    EXPECT_EQ(serial.metrics.of(op).count, parallel.metrics.of(op).count)
        << obs::OpName(op);
  }
  EXPECT_GT(serial.metrics.of(Op::kExpansion).count, 0u);
}

}  // namespace
}  // namespace sdj
