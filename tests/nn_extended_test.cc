// Extended nearest/farthest-neighbor tests: the KNearest convenience, the
// iterators over quadtrees (index genericity), radius-bounded consumption,
// and interleaved multi-iterator use over one shared tree.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "join_test_util.h"
#include "nn/inc_farthest.h"
#include "nn/inc_nearest.h"
#include "quadtree/quadtree.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

using test::BuildPointTree;

std::vector<Point<2>> SomePoints(size_t n = 600, uint64_t seed = 910) {
  return data::GenerateUniform(n, Rect<2>({0, 0}, {1000, 1000}), seed);
}

TEST(KNearest, ReturnsExactlyKClosest) {
  const auto points = SomePoints();
  RTree<2> tree = BuildPointTree(points);
  const Point<2> query{321, 654};
  const auto got = KNearest(tree, query, 12);
  ASSERT_EQ(got.size(), 12u);
  std::vector<double> expected;
  for (const auto& p : points) expected.push_back(Dist(query, p));
  std::sort(expected.begin(), expected.end());
  for (size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].distance, expected[k], 1e-9) << k;
  }
}

TEST(KNearest, KLargerThanTree) {
  const auto points = SomePoints(9, 911);
  RTree<2> tree = BuildPointTree(points);
  EXPECT_EQ(KNearest(tree, Point<2>{0, 0}, 100).size(), 9u);
}

TEST(KNearest, WorksOverQuadtree) {
  const auto points = SomePoints(500, 912);
  PointQuadtree<2> tree(Rect<2>({0, 0}, {1000, 1000}));
  for (size_t i = 0; i < points.size(); ++i) tree.Insert(points[i], i);
  const Point<2> query{777, 111};
  const auto got = KNearest(tree, query, 10);
  std::vector<double> expected;
  for (const auto& p : points) expected.push_back(Dist(query, p));
  std::sort(expected.begin(), expected.end());
  ASSERT_EQ(got.size(), 10u);
  for (size_t k = 0; k < got.size(); ++k) {
    EXPECT_NEAR(got[k].distance, expected[k], 1e-9) << k;
  }
}

TEST(IncNearestNeighbor, RadiusBoundedConsumption) {
  // The incremental idiom for "all neighbors within r": consume until the
  // distance exceeds the radius — no wasted traversal beyond it.
  const auto points = SomePoints(3000, 913);
  RTree<2> tree = BuildPointTree(points);
  const Point<2> query{500, 500};
  const double radius = 60.0;
  IncNearestNeighbor<2> nn(tree, query);
  IncNearestNeighbor<2>::Result hit;
  size_t within = 0;
  while (nn.Next(&hit) && hit.distance <= radius) ++within;
  size_t expected = 0;
  for (const auto& p : points) {
    if (Dist(query, p) <= radius) ++expected;
  }
  EXPECT_EQ(within, expected);
  // Far fewer nodes touched than a full scan would need.
  EXPECT_LT(nn.stats().nodes_expanded, tree.num_nodes());
}

TEST(IncNearestNeighbor, ManyIteratorsShareOneTree) {
  const auto points = SomePoints(800, 914);
  RTree<2> tree = BuildPointTree(points);
  Rng rng(915);
  // Interleave three concurrent iterators; each must stay internally
  // consistent (the tree and pool are shared read-only).
  IncNearestNeighbor<2> nn1(tree, {100, 100});
  IncNearestNeighbor<2> nn2(tree, {900, 900});
  IncNearestNeighbor<2> nn3(tree, {500, 100});
  double last1 = 0.0;
  double last2 = 0.0;
  double last3 = 0.0;
  IncNearestNeighbor<2>::Result hit;
  for (int round = 0; round < 300; ++round) {
    switch (rng.NextBounded(3)) {
      case 0:
        ASSERT_TRUE(nn1.Next(&hit));
        ASSERT_GE(hit.distance, last1);
        last1 = hit.distance;
        break;
      case 1:
        ASSERT_TRUE(nn2.Next(&hit));
        ASSERT_GE(hit.distance, last2);
        last2 = hit.distance;
        break;
      default:
        ASSERT_TRUE(nn3.Next(&hit));
        ASSERT_GE(hit.distance, last3);
        last3 = hit.distance;
        break;
    }
  }
}

TEST(IncFarthestNeighbor, WorksOverQuadtree) {
  const auto points = SomePoints(400, 916);
  PointQuadtree<2> tree(Rect<2>({0, 0}, {1000, 1000}));
  for (size_t i = 0; i < points.size(); ++i) tree.Insert(points[i], i);
  const Point<2> query{10, 10};
  IncFarthestNeighbor<2, PointQuadtree<2>> fn(tree, query);
  std::vector<double> expected;
  for (const auto& p : points) expected.push_back(Dist(query, p));
  std::sort(expected.rbegin(), expected.rend());
  typename IncFarthestNeighbor<2, PointQuadtree<2>>::Result hit;
  for (size_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(fn.Next(&hit));
    ASSERT_NEAR(hit.distance, expected[k], 1e-9) << k;
  }
}

TEST(IncNearestAndFarthest, MeetInTheMiddle) {
  // Draining nearest-first and farthest-first must produce reversed
  // sequences of the same multiset.
  const auto points = SomePoints(300, 917);
  RTree<2> tree = BuildPointTree(points);
  const Point<2> query{444, 333};
  std::vector<double> up;
  std::vector<double> down;
  IncNearestNeighbor<2> nn(tree, query);
  IncFarthestNeighbor<2> fn(tree, query);
  IncNearestNeighbor<2>::Result hit;
  while (nn.Next(&hit)) up.push_back(hit.distance);
  while (fn.Next(&hit)) down.push_back(hit.distance);
  ASSERT_EQ(up.size(), down.size());
  std::reverse(down.begin(), down.end());
  for (size_t i = 0; i < up.size(); ++i) {
    ASSERT_NEAR(up[i], down[i], 1e-9) << i;
  }
}

}  // namespace
}  // namespace sdj
