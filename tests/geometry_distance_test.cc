// Unit and property tests for the distance bound functions. The property
// tests verify exactly the "consistency" contract of Section 2.2 that the
// incremental join's correctness rests on.
#include "geometry/distance.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/code_screen.h"
#include "geometry/metrics.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/rect_batch.h"
#include "geometry/simd.h"
#include "rtree/node_layout.h"
#include "util/rng.h"

namespace sdj {
namespace {

TEST(Dist, EuclideanKnownValues) {
  EXPECT_DOUBLE_EQ(Dist(Point<2>{0, 0}, Point<2>{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Dist(Point<2>{1, 1}, Point<2>{1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(Dist(Point<3>{0, 0, 0}, Point<3>{1, 2, 2}), 3.0);
}

TEST(Dist, ManhattanKnownValues) {
  EXPECT_DOUBLE_EQ(Dist(Point<2>{0, 0}, Point<2>{3, 4}, Metric::kManhattan),
                   7.0);
  EXPECT_DOUBLE_EQ(Dist(Point<2>{-1, 2}, Point<2>{2, -2}, Metric::kManhattan),
                   7.0);
}

TEST(Dist, ChessboardKnownValues) {
  EXPECT_DOUBLE_EQ(Dist(Point<2>{0, 0}, Point<2>{3, 4}, Metric::kChessboard),
                   4.0);
  EXPECT_DOUBLE_EQ(
      Dist(Point<2>{10, 0}, Point<2>{3, 4}, Metric::kChessboard), 7.0);
}

TEST(MinDist, PointInsideRectIsZero) {
  const Rect<2> r({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MinDist(Point<2>{5, 5}, r), 0.0);
  EXPECT_DOUBLE_EQ(MinDist(Point<2>{0, 10}, r), 0.0);  // boundary
}

TEST(MinDist, PointOutsideRect) {
  const Rect<2> r({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MinDist(Point<2>{13, 14}, r), 5.0);   // corner 3-4-5
  EXPECT_DOUBLE_EQ(MinDist(Point<2>{5, -2}, r), 2.0);    // face
  EXPECT_DOUBLE_EQ(MinDist(Point<2>{13, 14}, r, Metric::kManhattan), 7.0);
  EXPECT_DOUBLE_EQ(MinDist(Point<2>{13, 14}, r, Metric::kChessboard), 4.0);
}

TEST(MinDist, IntersectingRectsAreZero) {
  const Rect<2> a({0, 0}, {5, 5});
  const Rect<2> b({4, 4}, {9, 9});
  EXPECT_DOUBLE_EQ(MinDist(a, b), 0.0);
  const Rect<2> touching({5, 0}, {6, 5});
  EXPECT_DOUBLE_EQ(MinDist(a, touching), 0.0);
}

TEST(MinDist, SeparatedRects) {
  const Rect<2> a({0, 0}, {1, 1});
  const Rect<2> b({4, 5}, {6, 7});
  EXPECT_DOUBLE_EQ(MinDist(a, b), 5.0);  // gap (3, 4)
  EXPECT_DOUBLE_EQ(MinDist(a, b, Metric::kManhattan), 7.0);
  EXPECT_DOUBLE_EQ(MinDist(a, b, Metric::kChessboard), 4.0);
  EXPECT_DOUBLE_EQ(MinDist(b, a), 5.0);  // symmetric
}

TEST(MaxDist, PointToRect) {
  const Rect<2> r({0, 0}, {10, 10});
  EXPECT_DOUBLE_EQ(MaxDist(Point<2>{0, 0}, r),
                   std::sqrt(200.0));  // farthest corner (10,10)
  EXPECT_DOUBLE_EQ(MaxDist(Point<2>{5, 5}, r), std::sqrt(50.0));
}

TEST(MaxDist, RectToRect) {
  const Rect<2> a({0, 0}, {1, 1});
  const Rect<2> b({2, 0}, {3, 1});
  EXPECT_DOUBLE_EQ(MaxDist(a, b), std::sqrt(9.0 + 1.0));
  EXPECT_DOUBLE_EQ(MaxDist(a, a), std::sqrt(2.0));  // own diagonal
}

TEST(MinMaxDist, PointToDegenerateRectIsExactDistance) {
  const auto r = Rect<2>::FromPoint({3, 4});
  EXPECT_DOUBLE_EQ(MinMaxDist(Point<2>{0, 0}, r), 5.0);
}

TEST(MinMaxDist, KnownValue2D) {
  // Unit square, query at origin. Choosing dimension x: nearer face x=0
  // (delta 0), farther face y=1 (delta 1) => sqrt(0+1) = 1. Same for y.
  const Rect<2> r({0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(MinMaxDist(Point<2>{0, 0}, r), 1.0);
}

TEST(MinMaxDist, NeverExceedsMaxDist) {
  const Rect<2> r({2, 3}, {5, 9});
  const Point<2> p{0, 0};
  EXPECT_LE(MinMaxDist(p, r), MaxDist(p, r));
  EXPECT_GE(MinMaxDist(p, r), MinDist(p, r));
}

TEST(MinMaxDist, RectRectDegenerateIsExactDistance) {
  const auto a = Rect<2>::FromPoint({0, 0});
  const auto b = Rect<2>::FromPoint({3, 4});
  EXPECT_DOUBLE_EQ(MinMaxDist(a, b), 5.0);
}

class MetricSweep : public ::testing::TestWithParam<Metric> {};

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricSweep,
                         ::testing::Values(Metric::kEuclidean,
                                           Metric::kManhattan,
                                           Metric::kChessboard),
                         [](const auto& info) {
                           switch (info.param) {
                             case Metric::kEuclidean: return "Euclidean";
                             case Metric::kManhattan: return "Manhattan";
                             case Metric::kChessboard: return "Chessboard";
                           }
                           return "Unknown";
                         });

Rect<2> RandomRect(Rng& rng, double span) {
  const double x1 = rng.Uniform(-span, span);
  const double x2 = rng.Uniform(-span, span);
  const double y1 = rng.Uniform(-span, span);
  const double y2 = rng.Uniform(-span, span);
  return Rect<2>({std::min(x1, x2), std::min(y1, y2)},
                 {std::max(x1, x2), std::max(y1, y2)});
}

Point<2> RandomPointIn(Rng& rng, const Rect<2>& r) {
  return {rng.Uniform(r.lo[0], r.hi[0]), rng.Uniform(r.lo[1], r.hi[1])};
}

// Samples a point set that `r` *minimally* bounds: every face of `r` is
// touched by some point (the precondition of MINMAXDIST).
std::vector<Point<2>> RandomMinimallyBoundedObject(Rng& rng,
                                                   const Rect<2>& r) {
  std::vector<Point<2>> points;
  for (int dim = 0; dim < 2; ++dim) {
    Point<2> on_lo = RandomPointIn(rng, r);
    on_lo[dim] = r.lo[dim];
    Point<2> on_hi = RandomPointIn(rng, r);
    on_hi[dim] = r.hi[dim];
    points.push_back(on_lo);
    points.push_back(on_hi);
  }
  for (int extra = 0; extra < 4; ++extra) {
    points.push_back(RandomPointIn(rng, r));
  }
  return points;
}

double MinPairDist(const std::vector<Point<2>>& a,
                   const std::vector<Point<2>>& b, Metric metric) {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : a) {
    for (const auto& q : b) {
      best = std::min(best, Dist(p, q, metric));
    }
  }
  return best;
}

TEST_P(MetricSweep, MinDistAndMaxDistBoundAllPointPairs) {
  const Metric metric = GetParam();
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const Rect<2> a = RandomRect(rng, 100.0);
    const Rect<2> b = RandomRect(rng, 100.0);
    const double lo = MinDist(a, b, metric);
    const double hi = MaxDist(a, b, metric);
    for (int s = 0; s < 10; ++s) {
      const Point<2> p = RandomPointIn(rng, a);
      const Point<2> q = RandomPointIn(rng, b);
      const double d = Dist(p, q, metric);
      ASSERT_LE(lo, d + 1e-9);
      ASSERT_GE(hi, d - 1e-9);
    }
  }
}

TEST_P(MetricSweep, PointRectMinDistMaxDistBound) {
  const Metric metric = GetParam();
  Rng rng(102);
  for (int trial = 0; trial < 500; ++trial) {
    const Rect<2> r = RandomRect(rng, 50.0);
    const Point<2> p{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    const double lo = MinDist(p, r, metric);
    const double hi = MaxDist(p, r, metric);
    ASSERT_LE(lo, hi + 1e-12);
    for (int s = 0; s < 10; ++s) {
      const double d = Dist(p, RandomPointIn(rng, r), metric);
      ASSERT_LE(lo, d + 1e-9);
      ASSERT_GE(hi, d - 1e-9);
    }
  }
}

TEST_P(MetricSweep, MinMaxDistUpperBoundsDistanceToMinimallyBoundedObject) {
  const Metric metric = GetParam();
  Rng rng(103);
  for (int trial = 0; trial < 300; ++trial) {
    const Rect<2> r = RandomRect(rng, 50.0);
    const auto object = RandomMinimallyBoundedObject(rng, r);
    const Point<2> p{rng.Uniform(-100, 100), rng.Uniform(-100, 100)};
    double nearest = std::numeric_limits<double>::infinity();
    for (const auto& q : object) {
      nearest = std::min(nearest, Dist(p, q, metric));
    }
    ASSERT_LE(nearest, MinMaxDist(p, r, metric) + 1e-9)
        << "trial " << trial;
    // Sanity: the MINMAXDIST estimate itself sits between the bounds.
    ASSERT_GE(MinMaxDist(p, r, metric), MinDist(p, r, metric) - 1e-9);
    ASSERT_LE(MinMaxDist(p, r, metric), MaxDist(p, r, metric) + 1e-9);
  }
}

TEST_P(MetricSweep, RectRectMinMaxDistUpperBoundsObjectPairDistance) {
  const Metric metric = GetParam();
  Rng rng(104);
  for (int trial = 0; trial < 300; ++trial) {
    const Rect<2> a = RandomRect(rng, 50.0);
    const Rect<2> b = RandomRect(rng, 50.0);
    const auto o1 = RandomMinimallyBoundedObject(rng, a);
    const auto o2 = RandomMinimallyBoundedObject(rng, b);
    const double actual = MinPairDist(o1, o2, metric);
    ASSERT_LE(actual, MinMaxDist(a, b, metric) + 1e-9) << "trial " << trial;
    ASSERT_LE(MinMaxDist(a, b, metric), MaxDist(a, b, metric) + 1e-9);
  }
}

TEST_P(MetricSweep, MaxMinMaxDistDominatesPointwiseMinMaxDist) {
  const Metric metric = GetParam();
  Rng rng(105);
  for (int trial = 0; trial < 300; ++trial) {
    const Rect<2> a = RandomRect(rng, 50.0);
    const Rect<2> b = RandomRect(rng, 50.0);
    const double bound = MaxMinMaxDist(a, b, metric);
    ASSERT_LE(bound, MaxDist(a, b, metric) + 1e-9);
    for (int s = 0; s < 20; ++s) {
      const Point<2> p = RandomPointIn(rng, a);
      ASSERT_LE(MinMaxDist(p, b, metric), bound + 1e-9)
          << "trial " << trial << " p=" << p.ToString();
    }
  }
}

TEST_P(MetricSweep, ConsistencyUnderContainment) {
  // The core consistency property (Section 2.2): shrinking either side of a
  // pair can only increase MINDIST — a child pair never has a smaller
  // distance than the pair that generated it.
  const Metric metric = GetParam();
  Rng rng(106);
  for (int trial = 0; trial < 300; ++trial) {
    const Rect<2> parent = RandomRect(rng, 50.0);
    // A child contained in the parent.
    const Point<2> c1 = RandomPointIn(rng, parent);
    const Point<2> c2 = RandomPointIn(rng, parent);
    const Rect<2> child({std::min(c1[0], c2[0]), std::min(c1[1], c2[1])},
                        {std::max(c1[0], c2[0]), std::max(c1[1], c2[1])});
    const Rect<2> other = RandomRect(rng, 80.0);
    ASSERT_GE(MinDist(child, other, metric),
              MinDist(parent, other, metric) - 1e-9);
    ASSERT_LE(MaxDist(child, other, metric),
              MaxDist(parent, other, metric) + 1e-9);
  }
}

TEST_P(MetricSweep, MaxMinDistBoundsObjectsAgainstExactGeometry) {
  // MaxMinDist(a, b) must bound d(o1, o2) for every o1 inside `a` when `b`
  // is the exact geometry of o2 (point or box object).
  const Metric metric = GetParam();
  Rng rng(107);
  for (int trial = 0; trial < 300; ++trial) {
    const Rect<2> a = RandomRect(rng, 50.0);
    const Rect<2> b = RandomRect(rng, 50.0);
    const double bound = MaxMinDist(a, b, metric);
    ASSERT_LE(bound, MaxDist(a, b, metric) + 1e-9);
    for (int s = 0; s < 15; ++s) {
      // o1: an arbitrary point set inside `a` — a single sample suffices as
      // a witness since d(o1, b) <= d(p, b) for p in o1.
      const Point<2> p = RandomPointIn(rng, a);
      ASSERT_LE(MinDist(p, b, metric), bound + 1e-9) << trial;
    }
  }
}

Rect<3> RandomRect3(Rng& rng, double span) {
  Point<3> a{rng.Uniform(-span, span), rng.Uniform(-span, span),
             rng.Uniform(-span, span)};
  Point<3> b{rng.Uniform(-span, span), rng.Uniform(-span, span),
             rng.Uniform(-span, span)};
  Rect<3> r;
  for (int i = 0; i < 3; ++i) {
    r.lo[i] = std::min(a[i], b[i]);
    r.hi[i] = std::max(a[i], b[i]);
  }
  return r;
}

Point<3> RandomPointIn3(Rng& rng, const Rect<3>& r) {
  return {rng.Uniform(r.lo[0], r.hi[0]), rng.Uniform(r.lo[1], r.hi[1]),
          rng.Uniform(r.lo[2], r.hi[2])};
}

TEST_P(MetricSweep, ThreeDimensionalBoundHierarchy) {
  // The full bound chain in 3-D: MinDist <= sampled distances <= MaxDist,
  // MinMaxDist between them, MaxMinDist <= MaxDist, point MINMAXDIST bounded
  // by MaxMinMaxDist.
  const Metric metric = GetParam();
  Rng rng(108);
  for (int trial = 0; trial < 200; ++trial) {
    const Rect<3> a = RandomRect3(rng, 40.0);
    const Rect<3> b = RandomRect3(rng, 40.0);
    const double lo = MinDist(a, b, metric);
    const double hi = MaxDist(a, b, metric);
    ASSERT_LE(lo, hi + 1e-9);
    ASSERT_LE(MinMaxDist(a, b, metric), hi + 1e-9);
    ASSERT_GE(MinMaxDist(a, b, metric), lo - 1e-9);
    ASSERT_LE(MaxMinDist(a, b, metric), hi + 1e-9);
    const double mmm = MaxMinMaxDist(a, b, metric);
    ASSERT_LE(mmm, hi + 1e-9);
    for (int s = 0; s < 10; ++s) {
      const Point<3> p = RandomPointIn3(rng, a);
      const Point<3> q = RandomPointIn3(rng, b);
      const double d = Dist(p, q, metric);
      ASSERT_LE(lo, d + 1e-9);
      ASSERT_GE(hi, d - 1e-9);
      ASSERT_LE(MinDist(p, b, metric), MaxMinDist(a, b, metric) + 1e-9);
      ASSERT_LE(MinMaxDist(p, b, metric), mmm + 1e-9);
    }
  }
}

TEST(Distance, HigherDimensions) {
  // 4-D spot checks: the templates must not silently assume 2-D.
  const Rect<4> a({0, 0, 0, 0}, {1, 1, 1, 1});
  const Rect<4> b({3, 0, 0, 0}, {4, 1, 1, 1});
  EXPECT_DOUBLE_EQ(MinDist(a, b), 2.0);
  EXPECT_DOUBLE_EQ(MinDist(a, b, Metric::kManhattan), 2.0);
  EXPECT_DOUBLE_EQ(MaxDist(a, b, Metric::kChessboard), 4.0);
  const Point<4> p{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(MinDist(p, b), 3.0);
  EXPECT_LE(MinMaxDist(p, b), MaxDist(p, b));
}

// ---- batched kernels (geometry/rect_batch.h) ----
//
// The contract is bit-identity with the scalar functions — on EVERY
// dispatchable ISA path (DESIGN.md §15), so each check below runs once per
// entry of simd::SupportedIsas(). Every comparison is exact (EXPECT_EQ, not
// EXPECT_DOUBLE_EQ). The parallel expansion's determinism guarantee
// (DESIGN.md §10) rests on this, so a ULP of drift here is a real bug, not
// test flakiness.

template <int Dim>
Rect<Dim> RandomRectN(Rng& rng, double span, bool degenerate) {
  Rect<Dim> r;
  for (int d = 0; d < Dim; ++d) {
    const double a = rng.Uniform(-span, span);
    const double b = degenerate ? a : rng.Uniform(-span, span);
    r.lo[d] = std::min(a, b);
    r.hi[d] = std::max(a, b);
  }
  return r;
}

template <int Dim>
void CheckBatchKernelsMatchScalar(Metric metric, uint64_t seed,
                                  simd::Isa isa) {
  SCOPED_TRACE(simd::IsaName(isa));
  Rng rng(seed);
  RectBatch<Dim> batch;
  std::vector<Rect<Dim>> rects;
  // 131 rectangles: not a multiple of any natural vector width, with every
  // 7th degenerate (a point) to hit the zero-gap cases.
  for (int i = 0; i < 131; ++i) {
    rects.push_back(RandomRectN<Dim>(rng, 50.0, /*degenerate=*/i % 7 == 0));
    batch.push_back(rects.back());
  }
  const Rect<Dim> q = RandomRectN<Dim>(rng, 50.0, /*degenerate=*/false);
  Point<Dim> p;
  for (int d = 0; d < Dim; ++d) p[d] = rng.Uniform(-50.0, 50.0);
  const size_t n = rects.size();
  std::vector<double> out(n);

  MinDistBatch(batch, q, metric, out.data(), 0, n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MinDist(rects[i], q, metric)) << i;
    // MINDIST is symmetric bit-for-bit (at most one interval gap per
    // dimension is positive), which the engine relies on to batch either
    // side of a pair.
    ASSERT_EQ(out[i], MinDist(q, rects[i], metric)) << i;
  }
  MinDistBatch(batch, p, metric, out.data(), 0, n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MinDist(p, rects[i], metric)) << i;
  }
  MaxDistBatch(batch, q, metric, out.data(), 0, n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MaxDist(rects[i], q, metric)) << i;
    ASSERT_EQ(out[i], MaxDist(q, rects[i], metric)) << i;
  }
  MaxDistBatch(batch, p, metric, out.data(), 0, n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MaxDist(p, rects[i], metric)) << i;
  }
  MinMaxDistBatch(batch, q, metric, out.data(), 0, n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MinMaxDist(rects[i], q, metric)) << i;
  }
  MaxMinDistBatch(batch, q, metric, /*batch_is_first=*/true, out.data(), 0, n,
                  isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MaxMinDist(rects[i], q, metric)) << i;
  }
  MaxMinDistBatch(batch, q, metric, /*batch_is_first=*/false, out.data(), 0,
                  n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MaxMinDist(q, rects[i], metric)) << i;
  }
  MaxMinMaxDistBatch(batch, q, metric, /*batch_is_first=*/true, out.data(), 0,
                     n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MaxMinMaxDist(rects[i], q, metric)) << i;
  }
  MaxMinMaxDistBatch(batch, q, metric, /*batch_is_first=*/false, out.data(),
                     0, n, isa);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], MaxMinMaxDist(q, rects[i], metric)) << i;
  }

  // Sub-range invocation (the sharded classify path) writes only [begin,
  // end) and produces the same values as the full-batch call, even when the
  // shard boundary falls mid-vector.
  std::vector<double> full(n);
  MinDistBatch(batch, q, metric, full.data(), 0, n, isa);
  std::vector<double> sharded(n, -1.0);
  const size_t mid = n / 3;
  MinDistBatch(batch, q, metric, sharded.data(), 0, mid, isa);
  MinDistBatch(batch, q, metric, sharded.data(), mid, n, isa);
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(sharded[i], full[i]) << i;
}

TEST_P(MetricSweep, BatchKernelsBitIdenticalToScalar2D) {
  for (simd::Isa isa : simd::SupportedIsas()) {
    CheckBatchKernelsMatchScalar<2>(GetParam(), 2024, isa);
  }
}

TEST_P(MetricSweep, BatchKernelsBitIdenticalToScalar3D) {
  for (simd::Isa isa : simd::SupportedIsas()) {
    CheckBatchKernelsMatchScalar<3>(GetParam(), 2025, isa);
  }
}

TEST_P(MetricSweep, BatchKernelsBitIdenticalToScalar4D) {
  for (simd::Isa isa : simd::SupportedIsas()) {
    CheckBatchKernelsMatchScalar<4>(GetParam(), 2026, isa);
  }
}

// Non-finite and boundary values must also match bit-for-bit on every ISA:
// infinities, denormals, signed zeros, and extreme magnitudes all take the
// same min/max/blend decisions in the vector lanes as in the scalar oracle.
// Outputs are compared by bit pattern (EXPECT_EQ would reject NaN == NaN).
//
// Two contracts, matching rect_batch.h's documentation:
//  * on VALID rects (lo <= hi) built from special values, every dispatch
//    path — including the batch-scalar one — equals the scalar oracle;
//  * on arbitrary bits (unordered intervals, NaN coordinates — inputs no
//    engine produces, but which must not become an ISA-dependent wildcard)
//    every vector path equals the batch-scalar path: the branchless form
//    may diverge from the scalar if/else chain off-domain, but it must
//    diverge IDENTICALLY on every tier, per the operand-order min/max/NaN
//    semantics pinned in geometry/simd.h.
TEST_P(MetricSweep, BatchKernelsBitIdenticalOnSpecialValues) {
  const Metric metric = GetParam();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kDen = std::numeric_limits<double>::denorm_min();
  constexpr double kMin = std::numeric_limits<double>::min();
  constexpr double kMax = std::numeric_limits<double>::max();
  const double specials[] = {0.0,  -0.0, 1.0,   -1.0, kDen, -kDen, kMin,
                             kMax, kInf, -kInf, kNan, 1e-300, 1e300};
  const auto same_bits = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
  };

  // Valid rects: every ordered pair of non-NaN specials, both dimensions.
  RectBatch<2> valid;
  std::vector<Rect<2>> valid_rects;
  for (double a : specials) {
    for (double b : specials) {
      if (std::isnan(a) || std::isnan(b)) continue;
      Rect<2> r;
      r.lo[0] = std::min(a, b);
      r.hi[0] = std::max(a, b);
      r.lo[1] = std::min(-a, -b);
      r.hi[1] = std::max(-a, -b);
      valid_rects.push_back(r);
      valid.push_back(r);
    }
  }
  const size_t n = valid_rects.size();
  const Rect<2> q({-0.5, kDen}, {0.5, kMax});
  std::vector<double> out(n);
  for (simd::Isa isa : simd::SupportedIsas()) {
    SCOPED_TRACE(simd::IsaName(isa));
    MinDistBatch(valid, q, metric, out.data(), 0, n, isa);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_bits(out[i], MinDist(valid_rects[i], q, metric))) << i;
    }
    MaxDistBatch(valid, q, metric, out.data(), 0, n, isa);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_bits(out[i], MaxDist(valid_rects[i], q, metric))) << i;
    }
    MinMaxDistBatch(valid, q, metric, out.data(), 0, n, isa);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_bits(out[i], MinMaxDist(valid_rects[i], q, metric)))
          << i;
    }
    MaxMinDistBatch(valid, q, metric, /*batch_is_first=*/true, out.data(), 0,
                    n, isa);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_bits(out[i], MaxMinDist(valid_rects[i], q, metric)))
          << i;
    }
    MaxMinMaxDistBatch(valid, q, metric, /*batch_is_first=*/false, out.data(),
                       0, n, isa);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(same_bits(out[i], MaxMinMaxDist(q, valid_rects[i], metric)))
          << i;
    }
  }

  // Hostile bits: unordered intervals and NaN coordinates. Reference is the
  // batch kernel forced onto the scalar path; every other tier must agree
  // exactly.
  RectBatch<2> hostile;
  for (double a : specials) {
    for (double b : specials) {
      Rect<2> r;
      r.lo[0] = a;
      r.hi[0] = b;
      r.lo[1] = -b;
      r.hi[1] = a;
      hostile.push_back(r);
    }
  }
  const size_t m = hostile.size();
  std::vector<double> ref(m), got(m);
  const auto check_against_scalar_path = [&](auto run) {
    run(ref.data(), simd::Isa::kScalar);
    for (simd::Isa isa : simd::SupportedIsas()) {
      if (isa == simd::Isa::kScalar) continue;
      SCOPED_TRACE(simd::IsaName(isa));
      run(got.data(), isa);
      for (size_t i = 0; i < m; ++i) {
        ASSERT_TRUE(same_bits(got[i], ref[i])) << i;
      }
    }
  };
  check_against_scalar_path([&](double* o, simd::Isa isa) {
    MinDistBatch(hostile, q, metric, o, 0, m, isa);
  });
  check_against_scalar_path([&](double* o, simd::Isa isa) {
    MaxDistBatch(hostile, q, metric, o, 0, m, isa);
  });
  check_against_scalar_path([&](double* o, simd::Isa isa) {
    MinMaxDistBatch(hostile, q, metric, o, 0, m, isa);
  });
  check_against_scalar_path([&](double* o, simd::Isa isa) {
    MaxMinDistBatch(hostile, q, metric, /*batch_is_first=*/true, o, 0, m,
                    isa);
  });
  check_against_scalar_path([&](double* o, simd::Isa isa) {
    MaxMinMaxDistBatch(hostile, q, metric, /*batch_is_first=*/false, o, 0, m,
                       isa);
  });
}

// Dispatch policy: explicit requests degrade to the nearest supported path
// and never upgrade; kAuto resolves to a concrete supported ISA.
TEST(SimdDispatch, ResolveClampsAndNeverUpgrades) {
  const simd::Isa resolved = simd::Resolve(simd::Isa::kAuto);
  EXPECT_NE(resolved, simd::Isa::kAuto);
  EXPECT_TRUE(simd::Supported(resolved));
  EXPECT_EQ(simd::Resolve(simd::Isa::kScalar), simd::Isa::kScalar);
  for (simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kSse2,
                        simd::Isa::kAvx2, simd::Isa::kAvx512}) {
    const simd::Isa got = simd::Resolve(isa);
    EXPECT_TRUE(simd::Supported(got)) << simd::IsaName(isa);
    EXPECT_LE(static_cast<int>(got), static_cast<int>(isa));
  }
}

// ---- integer code screening (geometry/code_screen.h, DESIGN.md §17) ----
//
// Two contracts. (1) Lockstep: the batch screening kernel produces the SAME
// prune bytes on every dispatchable ISA path, for arbitrary code bytes —
// it's pure u16 arithmetic, so even nonsense codes (hi < lo) must not
// become an ISA-dependent wildcard. (2) Soundness: an entry the screen
// prunes must compute MinDist(decoded rect, query) > max_distance in the
// exact f64 kernels, under every metric — one missed candidate would change
// the pair stream, breaking the screening-on/off byte-identity guarantee.

template <int Dim>
void CheckScreenBatchMatchesScalar(uint64_t seed) {
  Rng rng(seed);
  using QL = rtree_internal::QuantizedNodeLayout<Dim>;
  for (int trial = 0; trial < 50; ++trial) {
    // Random grid, query, and cutoff; some trials use an inactive (sentinel)
    // query to pin the nothing-prunes path across ISAs too.
    double lo[Dim];
    double hi[Dim];
    for (int d = 0; d < Dim; ++d) {
      lo[d] = rng.Uniform(-1e4, 1e4);
      hi[d] = lo[d] + rng.Uniform(1.0, 1e4);
    }
    const typename QL::Grid g = QL::MakeGrid(lo, hi);
    const Rect<Dim> query = RandomRectN<Dim>(rng, 1.5e4, false);
    const double max_distance =
        trial % 5 == 0 ? std::numeric_limits<double>::infinity()
                       : rng.Uniform(0.0, 2e3);
    code_screen::ScreenQuery<Dim> sq;
    code_screen::Prepare<Dim>(g.base, g.scale, query, max_distance, &sq);
    // 131 entries (not a vector multiple): arbitrary random code bytes.
    const size_t n = 131;
    std::vector<uint16_t> codes(n * 2 * Dim);
    for (uint16_t& c : codes) {
      c = static_cast<uint16_t>(rng.Uniform(0.0, 65535.999));
    }
    std::vector<uint8_t> ref(n, 0xFF);
    code_screen::ScreenCodesBatch<Dim>(sq, codes.data(), n, ref.data(),
                                       simd::Isa::kScalar);
    for (simd::Isa isa : simd::SupportedIsas()) {
      if (isa == simd::Isa::kScalar) continue;
      SCOPED_TRACE(simd::IsaName(isa));
      std::vector<uint8_t> got(n, 0xAA);
      code_screen::ScreenCodesBatch<Dim>(sq, codes.data(), n, got.data(),
                                         isa);
      ASSERT_EQ(std::memcmp(got.data(), ref.data(), n), 0) << trial;
    }
  }
}

TEST(CodeScreen, BatchKernelBitIdenticalToScalar2D) {
  CheckScreenBatchMatchesScalar<2>(3024);
}

TEST(CodeScreen, BatchKernelBitIdenticalToScalar3D) {
  // 2*Dim = 6 divides no vector width; every tier must take the scalar
  // fallback and still match byte-for-byte.
  CheckScreenBatchMatchesScalar<3>(3025);
}

TEST(CodeScreen, BatchKernelBitIdenticalToScalar4D) {
  CheckScreenBatchMatchesScalar<4>(3026);
}

// Soundness fuzz: entries are encoded exactly as a page stores them
// (outward-rounded), then screened; every pruned entry must be out of range
// for the DECODED rect under the exact kernels, and CodeMinDistLB must
// lower-bound the exact MINDIST. Grid magnitudes sweep from unit scale to
// 1e12 offsets, where the error padding in Prepare earns its keep.
TEST(CodeScreen, NeverDropsInRangeCandidates) {
  Rng rng(3027);
  using QL2 = rtree_internal::QuantizedNodeLayout<2>;
  const Metric metrics[] = {Metric::kEuclidean, Metric::kManhattan,
                            Metric::kChessboard};
  size_t pruned_total = 0;
  size_t kept_total = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const double offset =
        trial % 3 == 0 ? rng.Uniform(-1e12, 1e12) : rng.Uniform(-1e3, 1e3);
    const double span = trial % 2 == 0 ? rng.Uniform(1.0, 1e3)
                                       : rng.Uniform(1e-3, 1.0);
    // Entry rects inside [offset, offset + span]^2; the grid covers them.
    std::vector<Rect<2>> rects;
    double lo[2] = {offset, offset};
    double hi[2] = {offset + span, offset + span};
    for (int i = 0; i < 64; ++i) {
      Rect<2> r;
      for (int d = 0; d < 2; ++d) {
        const double a = offset + rng.Uniform(0.0, span);
        const double b = offset + rng.Uniform(0.0, span);
        r.lo[d] = std::min(a, b);
        r.hi[d] = std::max(a, b);
      }
      rects.push_back(r);
    }
    const QL2::Grid g = QL2::MakeGrid(lo, hi);
    // Query near the grid (sometimes overlapping, sometimes far off) and a
    // cutoff from subgrid-tiny to span-sized.
    Rect<2> query;
    for (int d = 0; d < 2; ++d) {
      const double a = offset + rng.Uniform(-span, 2.0 * span);
      const double b = offset + rng.Uniform(-span, 2.0 * span);
      query.lo[d] = std::min(a, b);
      query.hi[d] = std::max(a, b);
    }
    const double max_distance = rng.Uniform(0.0, span);
    code_screen::ScreenQuery<2> sq;
    code_screen::Prepare<2>(g.base, g.scale, query, max_distance, &sq);

    for (const Rect<2>& r : rects) {
      uint16_t codes[4];
      for (int d = 0; d < 2; ++d) {
        codes[d] = QL2::EncodeLo(g, d, r.lo[d]);
        codes[2 + d] = QL2::EncodeHi(g, d, r.hi[d]);
      }
      Rect<2> decoded;
      for (int d = 0; d < 2; ++d) {
        decoded.lo[d] = QL2::Decode(g, d, codes[d]);
        decoded.hi[d] = QL2::Decode(g, d, codes[2 + d]);
      }
      const bool pruned = code_screen::ScreenOne<2>(sq, codes);
      if (pruned) {
        ++pruned_total;
      } else {
        ++kept_total;
      }
      for (const Metric metric : metrics) {
        const double exact = MinDist(decoded, query, metric);
        // The code-space lower bound never exceeds the exact kernel value.
        ASSERT_LE(code_screen::CodeMinDistLB<2>(sq, codes, metric), exact)
            << trial;
        // Zero missed candidates: pruned implies provably out of range.
        if (pruned) {
          ASSERT_GT(exact, max_distance) << trial;
        }
      }
    }
  }
  // The fuzz must actually exercise both outcomes to mean anything.
  EXPECT_GT(pruned_total, 1000u);
  EXPECT_GT(kept_total, 1000u);
}

// An inactive screen (degenerate grid, or a cutoff beyond the grid's
// resolution) must prune nothing on any path.
TEST(CodeScreen, InactiveQueryPrunesNothing) {
  using QL1 = rtree_internal::QuantizedNodeLayout<1>;
  double p = 7.0;
  const QL1::Grid g = QL1::MakeGrid(&p, &p);  // scale 0
  Rect<1> query;
  query.lo[0] = 100.0;
  query.hi[0] = 200.0;
  code_screen::ScreenQuery<1> sq;
  code_screen::Prepare<1>(g.base, g.scale, query, 1.0, &sq);
  EXPECT_FALSE(sq.active);
  uint16_t codes[2] = {0, code_screen::kMaxCode};
  EXPECT_FALSE(code_screen::ScreenOne<1>(sq, codes));
  // Infinite cutoff on a real grid: also inactive.
  double lo = 0.0;
  double hi = 100.0;
  const QL1::Grid g2 = QL1::MakeGrid(&lo, &hi);
  code_screen::Prepare<1>(g2.base, g2.scale, query,
                          std::numeric_limits<double>::infinity(), &sq);
  EXPECT_FALSE(sq.active);
}

TEST(RectBatchTest, RoundTripAndResize) {
  RectBatch<2> batch;
  EXPECT_TRUE(batch.empty());
  const Rect<2> a({0, 1}, {2, 3});
  const Rect<2> b({-5, -4}, {-3, -2});
  batch.push_back(a);
  batch.push_back(b);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.rect(0), a);
  EXPECT_EQ(batch.rect(1), b);
  batch.resize(3);
  batch.set(2, a);
  EXPECT_EQ(batch.rect(2), a);
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace sdj
