// Property sweep for the join engine: randomized configurations (policy,
// tie-break, metric, range, budget, queue, estimation) derived from a seed,
// each validated pair-for-pair against brute force; plus structural edge
// cases (wildly uneven tree sizes, single objects, non-dense ids, 3-D).
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

using test::BruteForcePairs;
using test::BuildPointTree;
using test::RefPair;

class JoinConfigFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, JoinConfigFuzz,
                         ::testing::Range<uint64_t>(1, 13));

TEST_P(JoinConfigFuzz, RandomConfigMatchesBruteForce) {
  Rng rng(GetParam() * 7919);
  // Random datasets: size, skew.
  const size_t na = 50 + rng.NextBounded(250);
  const size_t nb = 50 + rng.NextBounded(250);
  const Rect<2> extent({0, 0}, {1000, 1000});
  std::vector<Point<2>> a;
  std::vector<Point<2>> b;
  if (rng.NextDouble() < 0.5) {
    a = data::GenerateUniform(na, extent, rng.NextUint64());
  } else {
    data::ClusterOptions copts;
    copts.num_points = na;
    copts.extent = extent;
    copts.num_clusters = 1 + static_cast<int>(rng.NextBounded(8));
    copts.seed = rng.NextUint64();
    a = data::GenerateClustered(copts);
  }
  b = data::GenerateUniform(nb, extent, rng.NextUint64());

  // Random configuration.
  DistanceJoinOptions options;
  const Metric metrics[] = {Metric::kEuclidean, Metric::kManhattan,
                            Metric::kChessboard};
  options.metric = metrics[rng.NextBounded(3)];
  const NodeProcessingPolicy policies[] = {NodeProcessingPolicy::kEven,
                                           NodeProcessingPolicy::kBasic,
                                           NodeProcessingPolicy::kSimultaneous};
  options.node_policy = policies[rng.NextBounded(3)];
  options.tie_break = rng.NextDouble() < 0.5 ? TieBreakPolicy::kDepthFirst
                                             : TieBreakPolicy::kBreadthFirst;
  auto reference = BruteForcePairs(a, b, options.metric);
  if (rng.NextDouble() < 0.4) {
    options.min_distance =
        reference[rng.NextBounded(reference.size() / 2)].distance;
  }
  if (rng.NextDouble() < 0.4) {
    options.max_distance =
        reference[reference.size() / 2 +
                  rng.NextBounded(reference.size() / 2)].distance;
  }
  if (options.min_distance > options.max_distance) {
    std::swap(options.min_distance, options.max_distance);
  }
  const bool use_budget = rng.NextDouble() < 0.6;
  if (use_budget) {
    options.max_pairs = 1 + rng.NextBounded(500);
    options.estimate_max_distance = rng.NextDouble() < 0.6;
    options.aggressive_estimation =
        options.estimate_max_distance && rng.NextDouble() < 0.4;
  }
  if (rng.NextDouble() < 0.3) {
    options.use_hybrid_queue = true;
    options.hybrid.tier_width =
        std::max(1e-3, reference[reference.size() / 4].distance);
  }

  // Expected: the in-range prefix, capped by the budget.
  std::vector<double> expected;
  for (const RefPair& p : reference) {
    if (p.distance >= options.min_distance &&
        p.distance <= options.max_distance) {
      expected.push_back(p.distance);
    }
  }
  if (options.max_pairs > 0 && expected.size() > options.max_pairs) {
    expected.resize(options.max_pairs);
  }

  RTree<2> ta = BuildPointTree(a, 512, rng.NextDouble() < 0.5);
  RTree<2> tb = BuildPointTree(b, 512, rng.NextDouble() < 0.5);
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  std::vector<double> got;
  while (join.Next(&pair)) {
    got.push_back(pair.distance);
    // Reported distances are always the true distances.
    ASSERT_NEAR(pair.distance,
                Dist(a[pair.id1], b[pair.id2], options.metric), 1e-9);
  }
  ASSERT_EQ(got.size(), expected.size())
      << "min=" << options.min_distance << " max=" << options.max_distance
      << " k=" << options.max_pairs;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-9) << i;
  }
}

TEST(JoinEdgeCases, WildlyUnevenTreeSizes) {
  const auto a = data::GenerateUniform(5, Rect<2>({0, 0}, {1000, 1000}), 881);
  const auto b =
      data::GenerateUniform(8000, Rect<2>({0, 0}, {1000, 1000}), 882);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  ASSERT_LT(ta.height(), tb.height());
  const auto reference = BruteForcePairs(a, b);
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
  // And with the sides swapped (taller tree first).
  DistanceJoin<2> swapped(tb, ta, options);
  for (size_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(swapped.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
}

TEST(JoinEdgeCases, SingleObjectPerTree) {
  RTree<2> ta;
  RTree<2> tb;
  ta.Insert(Rect<2>::FromPoint({0, 0}), 11);
  tb.Insert(Rect<2>::FromPoint({3, 4}), 22);
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  ASSERT_TRUE(join.Next(&pair));
  EXPECT_EQ(pair.id1, 11u);
  EXPECT_EQ(pair.id2, 22u);
  EXPECT_DOUBLE_EQ(pair.distance, 5.0);
  EXPECT_FALSE(join.Next(&pair));
}

TEST(JoinEdgeCases, NonDenseObjectIds) {
  // Plain joins carry ids opaquely; nothing may assume density.
  const auto a = data::GenerateUniform(80, Rect<2>({0, 0}, {100, 100}), 883);
  const auto b = data::GenerateUniform(90, Rect<2>({0, 0}, {100, 100}), 884);
  RTree<2> ta;
  RTree<2> tb;
  for (size_t i = 0; i < a.size(); ++i) {
    ta.Insert(Rect<2>::FromPoint(a[i]), i * 7 + 13);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    tb.Insert(Rect<2>::FromPoint(b[i]), i * 1000 + 1);
  }
  const auto reference = BruteForcePairs(a, b);
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
    EXPECT_EQ((pair.id1 - 13) % 7, 0u);
    EXPECT_EQ(pair.id2 % 1000, 1u);
  }
}

TEST(JoinEdgeCases, ThreeDimensionalJoin) {
  Rng rng(885);
  std::vector<Point<3>> a;
  std::vector<Point<3>> b;
  RTreeOptions topts;
  topts.page_size = 512;
  RTree<3> ta(topts);
  RTree<3> tb(topts);
  for (int i = 0; i < 300; ++i) {
    a.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100),
                 rng.Uniform(0, 100)});
    ta.Insert(Rect<3>::FromPoint(a.back()), i);
  }
  for (int i = 0; i < 350; ++i) {
    b.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100),
                 rng.Uniform(0, 100)});
    tb.Insert(Rect<3>::FromPoint(b.back()), i);
  }
  std::vector<double> reference;
  for (const auto& p : a) {
    for (const auto& q : b) reference.push_back(Dist(p, q));
  }
  std::sort(reference.begin(), reference.end());

  DistanceJoinOptions options;
  DistanceJoin<3> join(ta, tb, options);
  JoinResult<3> pair;
  for (size_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k], 1e-9) << k;
  }
}

TEST(JoinEdgeCases, BoxObjectsWithOverlap) {
  // Extended objects stored directly: overlapping boxes yield zero-distance
  // pairs first, then positive gaps in order.
  Rng rng(886);
  std::vector<Rect<2>> a;
  std::vector<Rect<2>> b;
  RTreeOptions topts;
  topts.page_size = 512;
  RTree<2> ta(topts);
  RTree<2> tb(topts);
  for (int i = 0; i < 120; ++i) {
    const double x = rng.Uniform(0, 950);
    const double y = rng.Uniform(0, 950);
    a.push_back({{x, y}, {x + rng.Uniform(1, 50), y + rng.Uniform(1, 50)}});
    ta.Insert(a.back(), i);
  }
  for (int i = 0; i < 120; ++i) {
    const double x = rng.Uniform(0, 950);
    const double y = rng.Uniform(0, 950);
    b.push_back({{x, y}, {x + rng.Uniform(1, 50), y + rng.Uniform(1, 50)}});
    tb.Insert(b.back(), i);
  }
  std::vector<double> reference;
  for (const auto& r : a) {
    for (const auto& s : b) reference.push_back(MinDist(r, s));
  }
  std::sort(reference.begin(), reference.end());

  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k], 1e-9) << k;
  }
}

}  // namespace
}  // namespace sdj
