// Property sweep for the join engine: randomized configurations (policy,
// tie-break, metric, range, budget, queue, estimation) derived from a seed,
// each validated pair-for-pair against brute force; plus structural edge
// cases (wildly uneven tree sizes, single objects, non-dense ids, 3-D).
#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

using test::BruteForcePairs;
using test::BuildPointTree;
using test::RefPair;

class JoinConfigFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, JoinConfigFuzz,
                         ::testing::Range<uint64_t>(1, 13));

TEST_P(JoinConfigFuzz, RandomConfigMatchesBruteForce) {
  Rng rng(GetParam() * 7919);
  // Random datasets: size, skew.
  const size_t na = 50 + rng.NextBounded(250);
  const size_t nb = 50 + rng.NextBounded(250);
  const Rect<2> extent({0, 0}, {1000, 1000});
  std::vector<Point<2>> a;
  std::vector<Point<2>> b;
  if (rng.NextDouble() < 0.5) {
    a = data::GenerateUniform(na, extent, rng.NextUint64());
  } else {
    data::ClusterOptions copts;
    copts.num_points = na;
    copts.extent = extent;
    copts.num_clusters = 1 + static_cast<int>(rng.NextBounded(8));
    copts.seed = rng.NextUint64();
    a = data::GenerateClustered(copts);
  }
  b = data::GenerateUniform(nb, extent, rng.NextUint64());

  // Random configuration.
  DistanceJoinOptions options;
  const Metric metrics[] = {Metric::kEuclidean, Metric::kManhattan,
                            Metric::kChessboard};
  options.metric = metrics[rng.NextBounded(3)];
  const NodeProcessingPolicy policies[] = {NodeProcessingPolicy::kEven,
                                           NodeProcessingPolicy::kBasic,
                                           NodeProcessingPolicy::kSimultaneous};
  options.node_policy = policies[rng.NextBounded(3)];
  options.tie_break = rng.NextDouble() < 0.5 ? TieBreakPolicy::kDepthFirst
                                             : TieBreakPolicy::kBreadthFirst;
  auto reference = BruteForcePairs(a, b, options.metric);
  if (rng.NextDouble() < 0.4) {
    options.min_distance =
        reference[rng.NextBounded(reference.size() / 2)].distance;
  }
  if (rng.NextDouble() < 0.4) {
    options.max_distance =
        reference[reference.size() / 2 +
                  rng.NextBounded(reference.size() / 2)].distance;
  }
  if (options.min_distance > options.max_distance) {
    std::swap(options.min_distance, options.max_distance);
  }
  const bool use_budget = rng.NextDouble() < 0.6;
  if (use_budget) {
    options.max_pairs = 1 + rng.NextBounded(500);
    options.estimate_max_distance = rng.NextDouble() < 0.6;
    options.aggressive_estimation =
        options.estimate_max_distance && rng.NextDouble() < 0.4;
  }
  if (rng.NextDouble() < 0.3) {
    options.use_hybrid_queue = true;
    options.hybrid.tier_width =
        std::max(1e-3, reference[reference.size() / 4].distance);
  }

  // Expected: the in-range prefix, capped by the budget.
  std::vector<double> expected;
  for (const RefPair& p : reference) {
    if (p.distance >= options.min_distance &&
        p.distance <= options.max_distance) {
      expected.push_back(p.distance);
    }
  }
  if (options.max_pairs > 0 && expected.size() > options.max_pairs) {
    expected.resize(options.max_pairs);
  }

  RTree<2> ta = BuildPointTree(a, 512, rng.NextDouble() < 0.5);
  RTree<2> tb = BuildPointTree(b, 512, rng.NextDouble() < 0.5);
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  std::vector<double> got;
  while (join.Next(&pair)) {
    got.push_back(pair.distance);
    // Reported distances are always the true distances.
    ASSERT_NEAR(pair.distance,
                Dist(a[pair.id1], b[pair.id2], options.metric), 1e-9);
  }
  ASSERT_EQ(got.size(), expected.size())
      << "min=" << options.min_distance << " max=" << options.max_distance
      << " k=" << options.max_pairs;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-9) << i;
  }
}

TEST(JoinEdgeCases, WildlyUnevenTreeSizes) {
  const auto a = data::GenerateUniform(5, Rect<2>({0, 0}, {1000, 1000}), 881);
  const auto b =
      data::GenerateUniform(8000, Rect<2>({0, 0}, {1000, 1000}), 882);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  ASSERT_LT(ta.height(), tb.height());
  const auto reference = BruteForcePairs(a, b);
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
  // And with the sides swapped (taller tree first).
  DistanceJoin<2> swapped(tb, ta, options);
  for (size_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(swapped.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
}

TEST(JoinEdgeCases, SingleObjectPerTree) {
  RTree<2> ta;
  RTree<2> tb;
  ta.Insert(Rect<2>::FromPoint({0, 0}), 11);
  tb.Insert(Rect<2>::FromPoint({3, 4}), 22);
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  ASSERT_TRUE(join.Next(&pair));
  EXPECT_EQ(pair.id1, 11u);
  EXPECT_EQ(pair.id2, 22u);
  EXPECT_DOUBLE_EQ(pair.distance, 5.0);
  EXPECT_FALSE(join.Next(&pair));
}

TEST(JoinEdgeCases, NonDenseObjectIds) {
  // Plain joins carry ids opaquely; nothing may assume density.
  const auto a = data::GenerateUniform(80, Rect<2>({0, 0}, {100, 100}), 883);
  const auto b = data::GenerateUniform(90, Rect<2>({0, 0}, {100, 100}), 884);
  RTree<2> ta;
  RTree<2> tb;
  for (size_t i = 0; i < a.size(); ++i) {
    ta.Insert(Rect<2>::FromPoint(a[i]), i * 7 + 13);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    tb.Insert(Rect<2>::FromPoint(b[i]), i * 1000 + 1);
  }
  const auto reference = BruteForcePairs(a, b);
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 300; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
    EXPECT_EQ((pair.id1 - 13) % 7, 0u);
    EXPECT_EQ(pair.id2 % 1000, 1u);
  }
}

TEST(JoinEdgeCases, ThreeDimensionalJoin) {
  Rng rng(885);
  std::vector<Point<3>> a;
  std::vector<Point<3>> b;
  RTreeOptions topts;
  topts.page_size = 512;
  RTree<3> ta(topts);
  RTree<3> tb(topts);
  for (int i = 0; i < 300; ++i) {
    a.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100),
                 rng.Uniform(0, 100)});
    ta.Insert(Rect<3>::FromPoint(a.back()), i);
  }
  for (int i = 0; i < 350; ++i) {
    b.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100),
                 rng.Uniform(0, 100)});
    tb.Insert(Rect<3>::FromPoint(b.back()), i);
  }
  std::vector<double> reference;
  for (const auto& p : a) {
    for (const auto& q : b) reference.push_back(Dist(p, q));
  }
  std::sort(reference.begin(), reference.end());

  DistanceJoinOptions options;
  DistanceJoin<3> join(ta, tb, options);
  JoinResult<3> pair;
  for (size_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k], 1e-9) << k;
  }
}

// ---- parallel expansion determinism (DESIGN.md §10) ----
//
// The acceptance gate for num_threads > 1 is bit-identity with the serial
// engine: the same pair sequence (ids AND exact distance doubles), the same
// counters, the same terminal status. Every comparison below is exact.

struct JoinTrace {
  std::vector<JoinResult<2>> pairs;
  JoinStatus status = JoinStatus::kOk;
  JoinStats stats;
};

template <typename JoinT>
JoinTrace DrainJoin(JoinT& join) {
  JoinTrace trace;
  JoinResult<2> pair;
  while (join.Next(&pair)) trace.pairs.push_back(pair);
  trace.status = join.status();
  trace.stats = join.stats();
  return trace;
}

// Asserts two traces are identical. `parallel_expansions` is the one counter
// allowed to differ (it reports how the work was done, not what was done).
void ExpectTracesIdentical(const JoinTrace& serial, const JoinTrace& other,
                           int threads) {
  ASSERT_EQ(serial.pairs.size(), other.pairs.size()) << threads << " threads";
  for (size_t i = 0; i < serial.pairs.size(); ++i) {
    ASSERT_EQ(serial.pairs[i].id1, other.pairs[i].id1) << i;
    ASSERT_EQ(serial.pairs[i].id2, other.pairs[i].id2) << i;
    ASSERT_EQ(serial.pairs[i].distance, other.pairs[i].distance) << i;
    ASSERT_EQ(serial.pairs[i].rect1, other.pairs[i].rect1) << i;
    ASSERT_EQ(serial.pairs[i].rect2, other.pairs[i].rect2) << i;
  }
  EXPECT_EQ(serial.status, other.status) << threads << " threads";
  const JoinStats& s = serial.stats;
  const JoinStats& o = other.stats;
  EXPECT_EQ(s.pairs_reported, o.pairs_reported);
  EXPECT_EQ(s.object_distance_calcs, o.object_distance_calcs);
  EXPECT_EQ(s.total_distance_calcs, o.total_distance_calcs);
  EXPECT_EQ(s.queue_pushes, o.queue_pushes);
  EXPECT_EQ(s.queue_pops, o.queue_pops);
  EXPECT_EQ(s.max_queue_size, o.max_queue_size);
  EXPECT_EQ(s.node_io, o.node_io);
  EXPECT_EQ(s.node_accesses, o.node_accesses);
  EXPECT_EQ(s.nodes_expanded, o.nodes_expanded);
  EXPECT_EQ(s.pruned_by_range, o.pruned_by_range);
  EXPECT_EQ(s.pruned_by_estimate, o.pruned_by_estimate);
  EXPECT_EQ(s.pruned_by_bound, o.pruned_by_bound);
  EXPECT_EQ(s.pruned_by_filter, o.pruned_by_filter);
  EXPECT_EQ(s.filtered_reported, o.filtered_reported);
  EXPECT_EQ(s.restarts, o.restarts);
  EXPECT_EQ(s.io_retries, o.io_retries);
  EXPECT_EQ(s.checksum_failures, o.checksum_failures);
  EXPECT_EQ(s.batch_kernel_invocations, o.batch_kernel_invocations);
}

class ParallelJoinFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelJoinFuzz,
                         ::testing::Range<uint64_t>(1, 9));

TEST_P(ParallelJoinFuzz, ThreadCountNeverChangesTheOutputStream) {
  Rng rng(GetParam() * 6151);
  const size_t na = 200 + rng.NextBounded(600);
  const size_t nb = 200 + rng.NextBounded(600);
  const Rect<2> extent({0, 0}, {1000, 1000});
  const auto a = data::GenerateUniform(na, extent, rng.NextUint64());
  const auto b = data::GenerateUniform(nb, extent, rng.NextUint64());

  DistanceJoinOptions options;
  const Metric metrics[] = {Metric::kEuclidean, Metric::kManhattan,
                            Metric::kChessboard};
  options.metric = metrics[rng.NextBounded(3)];
  const NodeProcessingPolicy policies[] = {NodeProcessingPolicy::kEven,
                                           NodeProcessingPolicy::kBasic,
                                           NodeProcessingPolicy::kSimultaneous};
  options.node_policy = policies[rng.NextBounded(3)];
  options.tie_break = rng.NextDouble() < 0.5 ? TieBreakPolicy::kDepthFirst
                                             : TieBreakPolicy::kBreadthFirst;
  if (rng.NextDouble() < 0.3) options.max_distance = rng.Uniform(50, 400);
  if (rng.NextDouble() < 0.2) options.min_distance = rng.Uniform(0, 40);
  options.max_pairs = 1 + rng.NextBounded(4000);
  JoinFilters<2> filters;
  if (rng.NextDouble() < 0.3) {
    // Windows are pure per-item predicates, so they stay on the fast path.
    filters.window1 = Rect<2>({0, 0}, {rng.Uniform(300, 1000), 1000});
  }
  const bool bulk = rng.NextDouble() < 0.5;

  std::optional<JoinTrace> serial;
  for (const int threads : {1, 2, 4, 7}) {
    // Fresh trees per run so buffer-pool state (node_io) starts cold.
    RTree<2> ta = BuildPointTree(a, 512, bulk);
    RTree<2> tb = BuildPointTree(b, 512, bulk);
    options.num_threads = threads;
    DistanceJoin<2> join(ta, tb, options, filters);
    JoinTrace trace = DrainJoin(join);
    if (!serial.has_value()) {
      serial = std::move(trace);
      continue;
    }
    ExpectTracesIdentical(*serial, trace, threads);
  }
}

TEST(ParallelJoin, GeneralPathConfigsAreUnaffectedByThreadCount) {
  // Estimation engages the non-parallel general path; the option must still
  // be accepted and produce the serial stream.
  Rng rng(4099);
  const Rect<2> extent({0, 0}, {1000, 1000});
  const auto a = data::GenerateUniform(400, extent, 11);
  const auto b = data::GenerateUniform(500, extent, 12);
  DistanceJoinOptions options;
  options.max_pairs = 300;
  options.estimate_max_distance = true;
  std::optional<JoinTrace> serial;
  for (const int threads : {1, 4}) {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    options.num_threads = threads;
    DistanceJoin<2> join(ta, tb, options);
    JoinTrace trace = DrainJoin(join);
    if (threads > 1) {
      EXPECT_EQ(trace.stats.parallel_expansions, 0u);
    }
    if (!serial.has_value()) {
      serial = std::move(trace);
      continue;
    }
    ExpectTracesIdentical(*serial, trace, threads);
  }
}

TEST(ParallelJoin, IoErrorPrefixesMatchAcrossThreadCounts) {
  // Under a dead-disk fault schedule the join degrades to a correct prefix
  // and stops with kIoError. Worker threads never touch the buffer pool, so
  // the page-read order — and therefore the surviving prefix — must be
  // identical for every thread count.
  const Rect<2> extent({0, 0}, {1000, 1000});
  const auto a = data::GenerateUniform(600, extent, 21);
  const auto b = data::GenerateUniform(700, extent, 22);
  const std::string path_a = ::testing::TempDir() + "/par_fault_a.pages";
  const std::string path_b = ::testing::TempDir() + "/par_fault_b.pages";
  const auto file_options = [](const std::string& path) {
    RTreeOptions topts;
    topts.page_size = 512;
    topts.file_path = path;
    return topts;
  };
  // Build both trees to disk healthy, then reopen each run under a fault
  // schedule so the dead-disk point falls inside the join, never inside
  // construction.
  {
    RTree<2> ta(file_options(path_a));
    for (size_t i = 0; i < a.size(); ++i) {
      ta.Insert(Rect<2>::FromPoint(a[i]), i);
    }
    ASSERT_TRUE(ta.Flush());
    RTree<2> tb(file_options(path_b));
    for (size_t i = 0; i < b.size(); ++i) {
      tb.Insert(Rect<2>::FromPoint(b[i]), i);
    }
    ASSERT_TRUE(tb.Flush());
  }
  std::optional<JoinTrace> serial;
  for (const int threads : {1, 2, 4, 7}) {
    storage::FaultInjectionOptions faults;
    faults.seed = 33;
    faults.hard_read_after = 150;
    RTreeOptions topts_a = file_options(path_a);
    topts_a.buffer_pages = 8;  // small pool: the join keeps re-reading
    topts_a.retry.max_attempts = 2;
    topts_a.retry.backoff_us = 0;
    topts_a.fault_injection = faults;
    RTreeOptions topts_b = topts_a;
    topts_b.file_path = path_b;
    auto ta = RTree<2>::Open(topts_a);
    auto tb = RTree<2>::Open(topts_b);
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    DistanceJoinOptions options;
    options.node_policy = NodeProcessingPolicy::kSimultaneous;
    options.num_threads = threads;
    DistanceJoin<2> join(*ta, *tb, options);
    JoinTrace trace = DrainJoin(join);
    if (!serial.has_value()) {
      EXPECT_EQ(trace.status, JoinStatus::kIoError);
      EXPECT_GT(trace.pairs.size(), 0u);
      serial = std::move(trace);
      continue;
    }
    ExpectTracesIdentical(*serial, trace, threads);
  }
}

TEST(JoinEdgeCases, BoxObjectsWithOverlap) {
  // Extended objects stored directly: overlapping boxes yield zero-distance
  // pairs first, then positive gaps in order.
  Rng rng(886);
  std::vector<Rect<2>> a;
  std::vector<Rect<2>> b;
  RTreeOptions topts;
  topts.page_size = 512;
  RTree<2> ta(topts);
  RTree<2> tb(topts);
  for (int i = 0; i < 120; ++i) {
    const double x = rng.Uniform(0, 950);
    const double y = rng.Uniform(0, 950);
    a.push_back({{x, y}, {x + rng.Uniform(1, 50), y + rng.Uniform(1, 50)}});
    ta.Insert(a.back(), i);
  }
  for (int i = 0; i < 120; ++i) {
    const double x = rng.Uniform(0, 950);
    const double y = rng.Uniform(0, 950);
    b.push_back({{x, y}, {x + rng.Uniform(1, 50), y + rng.Uniform(1, 50)}});
    tb.Insert(b.back(), i);
  }
  std::vector<double> reference;
  for (const auto& r : a) {
    for (const auto& s : b) reference.push_back(MinDist(r, s));
  }
  std::sort(reference.begin(), reference.end());

  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k], 1e-9) << k;
  }
}

}  // namespace
}  // namespace sdj
