// Tests for the durable-cursor subsystem (DESIGN.md §11): StopToken safe
// points, snapshot blob round-trips, the shadow-paged SnapshotStore, engine
// SaveState/RestoreState, and JoinCursor checkpoint/suspend/resume — plus
// the fuzzed resume-equivalence property: the concatenation of a pre-suspend
// prefix and the post-resume stream must be bit-identical to an
// uninterrupted run, and so must the final statistics.
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/join_cursor.h"
#include "core/semi_join.h"
#include "core/snapshot.h"
#include "core/within_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "nn/inc_farthest.h"
#include "nn/inc_nearest.h"
#include "rtree/rtree.h"
#include "storage/checksum.h"
#include "storage/fault_injection.h"
#include "util/stop_token.h"

namespace sdj {
namespace {

using test::BuildPointTree;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

snapshot::SnapshotStoreOptions StoreOptions(const std::string& path = "",
                                            uint32_t page_size = 4096) {
  snapshot::SnapshotStoreOptions options;
  options.path = path;
  options.page_size = page_size;
  return options;
}

CursorOptions MakeCursorOptions(const std::string& path = "",
                                uint64_t checkpoint_every = 0) {
  CursorOptions options;
  options.snapshot_path = path;
  options.checkpoint_every = checkpoint_every;
  return options;
}

// One reported pair, as a comparable value.
using Pair = std::tuple<uint64_t, uint64_t, double>;

template <int Dim>
Pair AsTuple(const JoinResult<Dim>& r) {
  return {r.id1, r.id2, r.distance};
}

// Every JoinStats field must match; `check_parallel` is off when comparing
// runs with different thread counts (parallel_expansions is the one
// documented exception to parallel/serial identity).
void ExpectStatsEqual(const JoinStats& a, const JoinStats& b,
                      bool check_parallel = true) {
  EXPECT_EQ(a.pairs_reported, b.pairs_reported);
  EXPECT_EQ(a.object_distance_calcs, b.object_distance_calcs);
  EXPECT_EQ(a.total_distance_calcs, b.total_distance_calcs);
  EXPECT_EQ(a.queue_pushes, b.queue_pushes);
  EXPECT_EQ(a.queue_pops, b.queue_pops);
  EXPECT_EQ(a.max_queue_size, b.max_queue_size);
  EXPECT_EQ(a.node_io, b.node_io);
  EXPECT_EQ(a.node_accesses, b.node_accesses);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.pruned_by_range, b.pruned_by_range);
  EXPECT_EQ(a.pruned_by_estimate, b.pruned_by_estimate);
  EXPECT_EQ(a.pruned_by_bound, b.pruned_by_bound);
  EXPECT_EQ(a.pruned_by_filter, b.pruned_by_filter);
  EXPECT_EQ(a.filtered_reported, b.filtered_reported);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
  EXPECT_EQ(a.spill_fallbacks, b.spill_fallbacks);
  EXPECT_EQ(a.batch_kernel_invocations, b.batch_kernel_invocations);
  if (check_parallel) {
    EXPECT_EQ(a.parallel_expansions, b.parallel_expansions);
  }
}

std::vector<Point<2>> MakePoints(size_t n, uint64_t seed) {
  const Rect<2> extent({0.0, 0.0}, {1000.0, 1000.0});
  return data::GenerateUniform(n, extent, seed);
}

// --- StopToken ---------------------------------------------------------------

TEST(StopToken, DefaultTokenNeverStops) {
  util::StopToken token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, RequestStopLatches) {
  util::StopSource source;
  util::StopToken token = source.token();
  EXPECT_TRUE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
  source.RequestStop();
  EXPECT_TRUE(token.stop_requested());
  source.Clear();
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, DeadlineFires) {
  util::StopSource source;
  util::StopToken token = source.token();
  source.SetDeadlineAfter(std::chrono::hours(-1));  // already past
  EXPECT_TRUE(token.stop_requested());
  source.SetDeadlineAfter(std::chrono::hours(1));
  EXPECT_FALSE(token.stop_requested());
}

// --- Blob / BlobReader -------------------------------------------------------

TEST(SnapshotBlob, RoundTrip) {
  snapshot::Blob blob;
  blob.PutU8(7);
  blob.PutU64(0x0123456789ABCDEFULL);
  blob.PutDouble(3.25);
  blob.PutBool(true);
  blob.PutI16(-42);
  snapshot::BlobReader reader(blob.data(), blob.size());
  EXPECT_EQ(reader.GetU8(), 7u);
  EXPECT_EQ(reader.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.GetDouble(), 3.25);
  EXPECT_TRUE(reader.GetBool());
  EXPECT_EQ(reader.GetI16(), -42);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(SnapshotBlob, TruncatedReadLatchesNotOk) {
  snapshot::Blob blob;
  blob.PutU8(1);
  snapshot::BlobReader reader(blob.data(), blob.size());
  EXPECT_EQ(reader.GetU64(), 0u);  // past the end: zero, not garbage
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.GetU8(), 0u);  // stays latched
}

TEST(SnapshotBlob, ImplausibleCountRejected) {
  snapshot::Blob blob;
  blob.PutU64(1ULL << 60);  // claims 2^60 elements in a 8-byte blob
  snapshot::BlobReader reader(blob.data(), blob.size());
  EXPECT_EQ(reader.GetCount(8), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(SnapshotBlob, PairEntryRoundTrip) {
  PairEntry<2> e;
  e.key = 1.5;
  e.distance = 2.5;
  e.item1.rect = Rect<2>({0.0, 1.0}, {2.0, 3.0});
  e.item1.ref = 11;
  e.item1.level = 2;
  e.item1.kind = JoinItemKind::kNode;
  e.item2.rect = Rect<2>({4.0, 5.0}, {4.0, 5.0});
  e.item2.ref = 7;
  e.item2.level = 0;
  e.item2.kind = JoinItemKind::kObject;
  e.seq = 99;
  e.category = 1;
  e.depth = 3;
  snapshot::Blob blob;
  snapshot::WriteEntry(&blob, e);
  EXPECT_EQ(blob.size(), snapshot::EntryWireSize<2>());
  snapshot::BlobReader reader(blob.data(), blob.size());
  PairEntry<2> back;
  ASSERT_TRUE(snapshot::ReadEntry(&reader, &back));
  EXPECT_EQ(back.key, e.key);
  EXPECT_EQ(back.distance, e.distance);
  EXPECT_EQ(back.item1.ref, e.item1.ref);
  EXPECT_EQ(back.item1.kind, e.item1.kind);
  EXPECT_TRUE(back.item2.rect == e.item2.rect);
  EXPECT_EQ(back.seq, e.seq);
  EXPECT_EQ(back.category, e.category);
  EXPECT_EQ(back.depth, e.depth);
}

// --- SnapshotStore -----------------------------------------------------------

snapshot::Blob PayloadOf(const std::string& text) {
  snapshot::Blob blob;
  blob.PutBytes(text.data(), text.size());
  return blob;
}

TEST(SnapshotStore, EmptyStoreHasNoSnapshot) {
  auto store = snapshot::SnapshotStore::Open(StoreOptions());
  ASSERT_NE(store, nullptr);
  std::string payload;
  EXPECT_FALSE(store->ReadLatest(&payload));
  EXPECT_EQ(store->stats().invalid_slots_seen, 0u);
}

TEST(SnapshotStore, LatestEpochWins) {
  auto store = snapshot::SnapshotStore::Open(StoreOptions("", 256));
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->WriteSnapshot(PayloadOf("one")));
  ASSERT_TRUE(store->WriteSnapshot(PayloadOf("two")));
  ASSERT_TRUE(store->WriteSnapshot(PayloadOf("three")));
  std::string payload;
  uint64_t epoch = 0;
  ASSERT_TRUE(store->ReadLatest(&payload, &epoch));
  EXPECT_EQ(payload, "three");
  EXPECT_EQ(epoch, 3u);
  EXPECT_EQ(store->stats().snapshots_written, 3u);
}

TEST(SnapshotStore, MultiPagePayloadRoundTrips) {
  auto store = snapshot::SnapshotStore::Open(StoreOptions("", 128));
  ASSERT_NE(store, nullptr);
  std::string big(1000, 'x');
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(store->WriteSnapshot(PayloadOf(big)));
  std::string payload;
  ASSERT_TRUE(store->ReadLatest(&payload));
  EXPECT_EQ(payload, big);
}

TEST(SnapshotStore, SurvivesReopen) {
  const std::string path = TempPath("snap_reopen.bin");
  std::remove(path.c_str());
  {
    auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("persisted")));
  }
  auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
  ASSERT_NE(store, nullptr);
  std::string payload;
  ASSERT_TRUE(store->ReadLatest(&payload));
  EXPECT_EQ(payload, "persisted");
  // The next snapshot after a reopen must not clobber the resumed-from slot.
  ASSERT_TRUE(store->WriteSnapshot(PayloadOf("newer")));
  ASSERT_TRUE(store->ReadLatest(&payload));
  EXPECT_EQ(payload, "newer");
}

// Flips one byte inside a physical page of the snapshot file; the per-page
// checksum trailer catches it on the next read. Physical pages are
// page_size + kPageTrailerSize bytes (storage/page_store.h).
void CorruptPage(const std::string& path, uint32_t page_size, uint32_t page) {
  const uint64_t physical = page_size + storage::kPageTrailerSize;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const long offset = static_cast<long>(page * physical + 16);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ 0xFF, f), EOF);
  std::fclose(f);
}

TEST(SnapshotStore, TornSlotFallsBackToPreviousSnapshot) {
  const std::string path = TempPath("snap_torn.bin");
  std::remove(path.c_str());
  const uint32_t page_size = 4096;
  {
    auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch1")));  // slot 1
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch2")));  // slot 0
  }
  // Corrupt epoch 2's header (page 0): a torn commit.
  CorruptPage(path, page_size, 0);
  auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
  ASSERT_NE(store, nullptr);
  std::string payload;
  uint64_t epoch = 0;
  ASSERT_TRUE(store->ReadLatest(&payload, &epoch));
  EXPECT_EQ(payload, "epoch1");
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(store->stats().invalid_slots_seen, 1u);
  // The next write must reuse the corrupt slot, not clobber the survivor.
  ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch2-redo")));
  ASSERT_TRUE(store->ReadLatest(&payload, &epoch));
  EXPECT_EQ(payload, "epoch2-redo");
}

TEST(SnapshotStore, TornPayloadPageFallsBack) {
  const std::string path = TempPath("snap_torn_payload.bin");
  std::remove(path.c_str());
  {
    auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch1")));  // payload page 3
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch2")));  // payload page 2
  }
  CorruptPage(path, 4096, 2);  // epoch 2's payload, header intact
  auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
  ASSERT_NE(store, nullptr);
  std::string payload;
  ASSERT_TRUE(store->ReadLatest(&payload));
  EXPECT_EQ(payload, "epoch1");
  EXPECT_EQ(store->stats().invalid_slots_seen, 1u);
}

TEST(SnapshotStore, BothSlotsCorruptMeansNoSnapshot) {
  const std::string path = TempPath("snap_both_torn.bin");
  std::remove(path.c_str());
  {
    auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch1")));
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch2")));
  }
  CorruptPage(path, 4096, 0);
  CorruptPage(path, 4096, 1);
  auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
  ASSERT_NE(store, nullptr);
  std::string payload;
  EXPECT_FALSE(store->ReadLatest(&payload));
  EXPECT_EQ(store->stats().invalid_slots_seen, 2u);
}

// With S slots, resume must fall back past up to S-1 *consecutive* torn or
// corrupt epochs — the serving layer provisions S > 2 so one bad burst
// cannot strand a session (DESIGN.md §14).
TEST(SnapshotStore, FourSlotsSurviveThreeConsecutiveCorruptEpochs) {
  const std::string path = TempPath("snap_multi_torn.bin");
  std::remove(path.c_str());
  snapshot::SnapshotStoreOptions options = StoreOptions(path);
  options.num_slots = 4;
  {
    auto store = snapshot::SnapshotStore::Open(options);
    ASSERT_NE(store, nullptr);
    for (int e = 1; e <= 5; ++e) {
      ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch" + std::to_string(e))));
    }
  }
  // Headers live on pages 0..3 (slot = epoch % 4); epoch e's payload starts
  // on page 4 + (e % 4). Corrupt the three newest epochs — 5 and 3 in their
  // headers, 4 in its payload.
  CorruptPage(path, 4096, 5 % 4);      // epoch 5 header
  CorruptPage(path, 4096, 4 + 4 % 4);  // epoch 4 payload
  CorruptPage(path, 4096, 3 % 4);      // epoch 3 header
  auto store = snapshot::SnapshotStore::Open(options);
  ASSERT_NE(store, nullptr);
  std::string payload;
  uint64_t epoch = 0;
  ASSERT_TRUE(store->ReadLatest(&payload, &epoch));
  EXPECT_EQ(payload, "epoch2");
  EXPECT_EQ(epoch, 2u);
  EXPECT_EQ(store->stats().invalid_slots_seen, 3u);
  // The next commit must rotate into the corrupt slots, never over the
  // survivor we just resumed from.
  ASSERT_TRUE(store->WriteSnapshot(PayloadOf("epoch3-redo")));
  ASSERT_TRUE(store->ReadLatest(&payload, &epoch));
  EXPECT_EQ(payload, "epoch3-redo");
  EXPECT_EQ(epoch, 3u);
}

TEST(SnapshotStore, DeadDiskWriteFailsButPreviousSnapshotSurvives) {
  const std::string path = TempPath("snap_dead_disk.bin");
  std::remove(path.c_str());
  {
    auto store = snapshot::SnapshotStore::Open(StoreOptions(path));
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->WriteSnapshot(PayloadOf("survivor")));
  }
  storage::FaultInjectionOptions faults;
  faults.hard_write_after = 0;  // every write fails from the start
  storage::RetryPolicy retry;
  retry.backoff_us = 0;
  snapshot::SnapshotStoreOptions dead_options = StoreOptions(path);
  dead_options.fault_injection = faults;
  dead_options.retry = retry;
  auto store = snapshot::SnapshotStore::Open(dead_options);
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(store->WriteSnapshot(PayloadOf("doomed")));
  EXPECT_GE(store->stats().write_failures, 1u);
  std::string payload;
  ASSERT_TRUE(store->ReadLatest(&payload));
  EXPECT_EQ(payload, "survivor");
}

// --- engine suspend / save / restore ----------------------------------------

// The join configurations the resume-equivalence property is checked over.
struct JoinConfig {
  bool hybrid = false;
  int threads = 1;
  bool estimate = false;
  uint64_t max_pairs = 0;
};

DistanceJoinOptions MakeJoinOptions(const JoinConfig& config) {
  DistanceJoinOptions options;
  options.use_hybrid_queue = config.hybrid;
  options.hybrid.tier_width = 25.0;  // small tiers: disk buckets populated
  options.num_threads = config.threads;
  options.max_pairs = config.max_pairs;
  options.estimate_max_distance = config.estimate;
  return options;
}

// Runs `engine` to completion, collecting pairs.
template <typename Engine>
std::vector<Pair> Drain(Engine* engine) {
  std::vector<Pair> pairs;
  JoinResult<2> r;
  while (engine->Next(&r)) pairs.push_back(AsTuple(r));
  return pairs;
}

TEST(DistanceJoinSuspend, StopTokenSuspendsAndContinues) {
  const auto a = MakePoints(120, 1);
  const auto b = MakePoints(120, 2);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  RTree<2> ta2 = BuildPointTree(a);
  RTree<2> tb2 = BuildPointTree(b);

  DistanceJoinOptions options;
  options.max_pairs = 400;
  DistanceJoin<2> reference(ta2, tb2, options);
  const std::vector<Pair> expected = Drain(&reference);

  util::StopSource source;
  options.stop_token = source.token();
  DistanceJoin<2> join(ta, tb, options);
  std::vector<Pair> pairs;
  JoinResult<2> r;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(join.Next(&r));
    pairs.push_back(AsTuple(r));
  }
  source.RequestStop();
  EXPECT_FALSE(join.Next(&r));
  EXPECT_EQ(join.status(), JoinStatus::kSuspended);
  // Suspension is not exhaustion: state is intact, so continuing works.
  source.Clear();
  join.ResumeSuspended();
  while (join.Next(&r)) pairs.push_back(AsTuple(r));
  EXPECT_EQ(join.status(), JoinStatus::kExhausted);
  EXPECT_EQ(pairs, expected);
  ExpectStatsEqual(join.stats(), reference.stats());
}

// Saves engine state after `prefix` pops, restores it into a freshly built
// engine over identical trees, and checks the combined stream and the final
// stats against an uninterrupted reference run.
void CheckJoinResumeEquivalence(const JoinConfig& config, size_t prefix,
                                const std::vector<Point<2>>& a,
                                const std::vector<Point<2>>& b) {
  SCOPED_TRACE(::testing::Message()
               << "hybrid=" << config.hybrid << " threads=" << config.threads
               << " estimate=" << config.estimate << " prefix=" << prefix);
  RTree<2> ref_ta = BuildPointTree(a);
  RTree<2> ref_tb = BuildPointTree(b);
  DistanceJoin<2> reference(ref_ta, ref_tb, MakeJoinOptions(config));
  const std::vector<Pair> expected = Drain(&reference);
  ASSERT_GT(expected.size(), prefix);

  // Phase 1: run `prefix` pairs, then snapshot.
  snapshot::Blob blob;
  std::vector<Pair> combined;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    DistanceJoin<2> join(ta, tb, MakeJoinOptions(config));
    JoinResult<2> r;
    for (size_t i = 0; i < prefix; ++i) {
      ASSERT_TRUE(join.Next(&r));
      combined.push_back(AsTuple(r));
    }
    ASSERT_TRUE(join.SaveState(&blob));
  }

  // Phase 2: fresh engine (fresh trees, as after a crash), restore, drain.
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoin<2> resumed(ta, tb, MakeJoinOptions(config));
  snapshot::BlobReader reader(blob.data(), blob.size());
  ASSERT_TRUE(resumed.RestoreState(&reader));
  for (const Pair& p : Drain(&resumed)) combined.push_back(p);
  EXPECT_EQ(combined, expected);
  ExpectStatsEqual(resumed.stats(), reference.stats(),
                   /*check_parallel=*/false);
}

TEST(DistanceJoinResume, MemoryQueueSerial) {
  const auto a = MakePoints(150, 3);
  const auto b = MakePoints(150, 4);
  CheckJoinResumeEquivalence({.max_pairs = 500}, 137, a, b);
}

TEST(DistanceJoinResume, MemoryQueueBeforeFirstPop) {
  const auto a = MakePoints(80, 5);
  const auto b = MakePoints(80, 6);
  CheckJoinResumeEquivalence({.max_pairs = 200}, 0, a, b);
}

TEST(DistanceJoinResume, HybridQueueSerial) {
  const auto a = MakePoints(150, 7);
  const auto b = MakePoints(150, 8);
  CheckJoinResumeEquivalence({.hybrid = true, .max_pairs = 500}, 211, a, b);
}

TEST(DistanceJoinResume, MemoryQueueParallel) {
  const auto a = MakePoints(150, 9);
  const auto b = MakePoints(150, 10);
  CheckJoinResumeEquivalence({.threads = 4, .max_pairs = 500}, 97, a, b);
}

TEST(DistanceJoinResume, HybridQueueParallel) {
  const auto a = MakePoints(150, 11);
  const auto b = MakePoints(150, 12);
  CheckJoinResumeEquivalence({.hybrid = true, .threads = 4, .max_pairs = 500},
                             303, a, b);
}

TEST(DistanceJoinResume, WithMaxDistanceEstimation) {
  const auto a = MakePoints(150, 13);
  const auto b = MakePoints(150, 14);
  CheckJoinResumeEquivalence({.estimate = true, .max_pairs = 300}, 120, a, b);
}

TEST(DistanceJoinResume, FuzzRandomSuspensionPoints) {
  std::mt19937_64 rng(20260805);
  const auto a = MakePoints(100, 15);
  const auto b = MakePoints(100, 16);
  const JoinConfig configs[] = {
      {.max_pairs = 250},
      {.hybrid = true, .max_pairs = 250},
      {.threads = 4, .max_pairs = 250},
      {.hybrid = true, .threads = 4, .max_pairs = 250},
  };
  for (const JoinConfig& config : configs) {
    for (int round = 0; round < 3; ++round) {
      const size_t prefix = rng() % 240;
      CheckJoinResumeEquivalence(config, prefix, a, b);
    }
  }
}

TEST(DistanceJoinResume, FingerprintMismatchIsRejected) {
  const auto a = MakePoints(60, 17);
  const auto b = MakePoints(60, 18);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  options.max_pairs = 100;
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> r;
  ASSERT_TRUE(join.Next(&r));
  snapshot::Blob blob;
  ASSERT_TRUE(join.SaveState(&blob));

  // Different metric: restore must refuse and leave the engine untouched.
  options.metric = Metric::kManhattan;
  DistanceJoin<2> other(ta, tb, options);
  snapshot::BlobReader reader(blob.data(), blob.size());
  EXPECT_FALSE(other.RestoreState(&reader));
  EXPECT_EQ(other.status(), JoinStatus::kOk);
  EXPECT_TRUE(other.Next(&r));  // still iterates from scratch

  // Garbage payload: fail-soft, no abort.
  DistanceJoin<2> third(ta, tb, options);
  const std::string junk(100, '\x5A');
  snapshot::BlobReader junk_reader(junk.data(), junk.size());
  EXPECT_FALSE(third.RestoreState(&junk_reader));
}

// --- semi-join suspend / resume ---------------------------------------------

struct SemiConfig {
  SemiJoinFilter filter = SemiJoinFilter::kInside2;
  SemiJoinBound bound = SemiJoinBound::kNone;
  bool estimate = false;
  int threads = 1;
  uint64_t max_pairs = 0;
};

SemiJoinOptions MakeSemiOptions(const SemiConfig& config) {
  SemiJoinOptions options;
  options.filter = config.filter;
  options.bound = config.bound;
  options.join.estimate_max_distance = config.estimate;
  options.join.num_threads = config.threads;
  options.join.max_pairs = config.max_pairs;
  return options;
}

void CheckSemiResumeEquivalence(const SemiConfig& config, size_t prefix,
                                const std::vector<Point<2>>& a,
                                const std::vector<Point<2>>& b) {
  SCOPED_TRACE(::testing::Message()
               << "filter=" << static_cast<int>(config.filter)
               << " bound=" << static_cast<int>(config.bound)
               << " threads=" << config.threads << " prefix=" << prefix);
  RTree<2> ref_ta = BuildPointTree(a);
  RTree<2> ref_tb = BuildPointTree(b);
  DistanceSemiJoin<2> reference(ref_ta, ref_tb, MakeSemiOptions(config));
  const std::vector<Pair> expected = Drain(&reference);
  ASSERT_GT(expected.size(), prefix);

  snapshot::Blob blob;
  std::vector<Pair> combined;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    DistanceSemiJoin<2> semi(ta, tb, MakeSemiOptions(config));
    JoinResult<2> r;
    for (size_t i = 0; i < prefix; ++i) {
      ASSERT_TRUE(semi.Next(&r));
      combined.push_back(AsTuple(r));
    }
    ASSERT_TRUE(semi.SaveState(&blob));
  }

  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceSemiJoin<2> resumed(ta, tb, MakeSemiOptions(config));
  snapshot::BlobReader reader(blob.data(), blob.size());
  ASSERT_TRUE(resumed.RestoreState(&reader));
  for (const Pair& p : Drain(&resumed)) combined.push_back(p);
  EXPECT_EQ(combined, expected);
  ExpectStatsEqual(resumed.stats(), reference.stats(),
                   /*check_parallel=*/false);
}

TEST(SemiJoinResume, Inside2) {
  const auto a = MakePoints(120, 21);
  const auto b = MakePoints(120, 22);
  CheckSemiResumeEquivalence({}, 45, a, b);
}

TEST(SemiJoinResume, OutsideFilterBitStringRoundTrips) {
  const auto a = MakePoints(120, 23);
  const auto b = MakePoints(120, 24);
  CheckSemiResumeEquivalence({.filter = SemiJoinFilter::kOutside}, 60, a, b);
}

TEST(SemiJoinResume, GlobalAllBoundsRoundTrip) {
  const auto a = MakePoints(120, 25);
  const auto b = MakePoints(120, 26);
  CheckSemiResumeEquivalence({.bound = SemiJoinBound::kGlobalAll}, 50, a, b);
}

TEST(SemiJoinResume, EstimationWithStopAfter) {
  const auto a = MakePoints(120, 27);
  const auto b = MakePoints(120, 28);
  CheckSemiResumeEquivalence({.estimate = true, .max_pairs = 80}, 30, a, b);
}

TEST(SemiJoinResume, FuzzRandomSuspensionPoints) {
  std::mt19937_64 rng(987654);
  const auto a = MakePoints(90, 29);
  const auto b = MakePoints(90, 30);
  const SemiConfig configs[] = {
      {},
      {.filter = SemiJoinFilter::kOutside},
      {.bound = SemiJoinBound::kGlobalAll, .threads = 4},
      {.filter = SemiJoinFilter::kInside1},
  };
  for (const SemiConfig& config : configs) {
    for (int round = 0; round < 3; ++round) {
      const size_t prefix = rng() % 85;
      CheckSemiResumeEquivalence(config, prefix, a, b);
    }
  }
}

// --- dense-id precondition ---------------------------------------------------

TEST(SemiJoinValidation, SparseIdsYieldInvalidArgumentNotAbort) {
  // Ids 0, 50, 99 over 3 objects: not dense, would overflow S_o indexing.
  RTree<2> ta = BuildPointTree({});
  ta.Insert(Rect<2>::FromPoint({1.0, 1.0}), 0);
  ta.Insert(Rect<2>::FromPoint({2.0, 2.0}), 50);
  ta.Insert(Rect<2>::FromPoint({3.0, 3.0}), 99);
  const auto b = MakePoints(20, 31);
  RTree<2> tb = BuildPointTree(b);

  for (const SemiJoinFilter filter :
       {SemiJoinFilter::kOutside, SemiJoinFilter::kInside1,
        SemiJoinFilter::kInside2}) {
    SemiJoinOptions options;
    options.filter = filter;
    DistanceSemiJoin<2> semi(ta, tb, options);
    JoinResult<2> r;
    EXPECT_FALSE(semi.Next(&r));
    EXPECT_EQ(semi.status(), JoinStatus::kInvalidArgument);
    snapshot::Blob blob;
    EXPECT_FALSE(semi.SaveState(&blob));
  }
}

TEST(SemiJoinValidation, DenseIdsStayValid) {
  const auto a = MakePoints(30, 32);
  const auto b = MakePoints(30, 33);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  EXPECT_EQ(ta.max_object_id(), a.size() - 1);
  DistanceSemiJoin<2> semi(ta, tb, SemiJoinOptions{});
  JoinResult<2> r;
  EXPECT_TRUE(semi.Next(&r));
  EXPECT_NE(semi.status(), JoinStatus::kInvalidArgument);
}

// --- JoinCursor --------------------------------------------------------------

TEST(JoinCursor, CheckpointEveryAndSuspendCheckpoint) {
  const auto a = MakePoints(100, 41);
  const auto b = MakePoints(100, 42);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  options.max_pairs = 100;
  util::StopSource source;
  options.stop_token = source.token();
  DistanceJoin<2> join(ta, tb, options);
  JoinCursor<2, DistanceJoin<2>> cursor(&join, MakeCursorOptions("", 10));
  ASSERT_TRUE(cursor.ok());
  JoinResult<2> r;
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(cursor.Next(&r));
  EXPECT_EQ(cursor.cursor_stats().checkpoints_written, 2u);  // at 10 and 20
  source.RequestStop();
  EXPECT_FALSE(cursor.Next(&r));
  EXPECT_EQ(cursor.status(), JoinStatus::kSuspended);
  // Suspension writes one more checkpoint, holding the exact stop point.
  EXPECT_EQ(cursor.cursor_stats().checkpoints_written, 3u);
  EXPECT_EQ(cursor.store()->last_epoch(), 3u);
}

// Simulated crash: phase 1 checkpoints to a file and "dies" (engine, cursor,
// and file-backed trees destroyed mid-run without a final snapshot); phase 2
// reopens everything and resumes from the last checkpoint. The resumed
// stream overlaps the crashed run's tail (at-least-once delivery) and the
// combination must reproduce the uninterrupted result exactly.
TEST(JoinCursor, CrashRecoveryAcrossReopenedTrees) {
  const std::string snap_path = TempPath("cursor_crash.snap");
  const std::string tree_a_path = TempPath("cursor_crash_a.pages");
  const std::string tree_b_path = TempPath("cursor_crash_b.pages");
  std::remove(snap_path.c_str());
  std::remove(tree_a_path.c_str());
  std::remove(tree_b_path.c_str());

  const auto a = MakePoints(100, 43);
  const auto b = MakePoints(100, 44);
  DistanceJoinOptions options;
  options.max_pairs = 120;

  // Reference result from throwaway in-memory trees.
  std::vector<Pair> expected;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    DistanceJoin<2> reference(ta, tb, options);
    expected = Drain(&reference);
  }

  RTreeOptions file_options;
  file_options.page_size = 512;
  auto BuildFileTree = [&](const std::string& path,
                           const std::vector<Point<2>>& pts) {
    RTreeOptions o = file_options;
    o.file_path = path;
    RTree<2> tree(o);
    std::vector<RTree<2>::Entry> entries;
    for (size_t i = 0; i < pts.size(); ++i) {
      entries.push_back({Rect<2>::FromPoint(pts[i]), i});
    }
    tree.BulkLoad(std::move(entries));
    ASSERT_TRUE(tree.Flush());
  };
  BuildFileTree(tree_a_path, a);
  BuildFileTree(tree_b_path, b);

  // Phase 1: 30 pairs with checkpoint_every=8 -> last checkpoint at 24.
  std::vector<Pair> prefix;
  {
    RTreeOptions oa = file_options;
    oa.file_path = tree_a_path;
    RTreeOptions ob = file_options;
    ob.file_path = tree_b_path;
    auto ta = RTree<2>::Open(oa);
    auto tb = RTree<2>::Open(ob);
    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    DistanceJoin<2> join(*ta, *tb, options);
    JoinCursor<2, DistanceJoin<2>> cursor(
        &join, MakeCursorOptions(snap_path, 8));
    ASSERT_TRUE(cursor.ok());
    JoinResult<2> r;
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(cursor.Next(&r));
      prefix.push_back(AsTuple(r));
    }
    EXPECT_EQ(cursor.cursor_stats().checkpoints_written, 3u);
    // "Crash": everything is destroyed here without a suspend snapshot.
  }

  // Phase 2: a new process reopens the trees and the snapshot store.
  RTreeOptions oa = file_options;
  oa.file_path = tree_a_path;
  oa.recover_truncated_tail = true;
  RTreeOptions ob = file_options;
  ob.file_path = tree_b_path;
  ob.recover_truncated_tail = true;
  auto ta = RTree<2>::Open(oa);
  auto tb = RTree<2>::Open(ob);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  DistanceJoin<2> join(*ta, *tb, options);
  JoinCursor<2, DistanceJoin<2>> cursor(&join,
                                        MakeCursorOptions(snap_path));
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor.ResumeLatest());
  EXPECT_EQ(cursor.cursor_stats().resumes, 1u);
  // Resume point is the checkpoint at pair 24: prefix[0..24) + resumed
  // stream must equal the uninterrupted result.
  std::vector<Pair> combined(prefix.begin(), prefix.begin() + 24);
  JoinResult<2> r;
  while (cursor.Next(&r)) combined.push_back(AsTuple(r));
  EXPECT_EQ(cursor.status(), JoinStatus::kExhausted);
  EXPECT_EQ(combined, expected);
  EXPECT_EQ(join.stats().pairs_reported, expected.size());
}

// Kill-point fuzz with torn snapshot commits: at a random checkpoint the
// header write is torn (fault schedule), so resume must fall back to the
// previous valid snapshot and still reproduce the reference stream.
TEST(JoinCursor, FuzzTornCheckpointFallsBackToPreviousSnapshot) {
  std::mt19937_64 rng(424242);
  const auto a = MakePoints(80, 45);
  const auto b = MakePoints(80, 46);
  DistanceJoinOptions options;
  options.max_pairs = 100;

  std::vector<Pair> expected;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    DistanceJoin<2> reference(ta, tb, options);
    expected = Drain(&reference);
  }

  for (int round = 0; round < 4; ++round) {
    const std::string path =
        TempPath("cursor_torn_" + std::to_string(round) + ".snap");
    std::remove(path.c_str());
    const uint64_t kill_after = 20 + rng() % 60;
    SCOPED_TRACE(::testing::Message() << "kill_after=" << kill_after);

    // Phase 1: checkpoint every 5 pairs; the snapshot store tears one write
    // partway through the run. A torn write reports failure (the cursor
    // counts it and the previous snapshot stays committed), but it also
    // leaves a half-written page on disk for resume to detect and skip.
    storage::FaultInjectionOptions faults;
    faults.torn_write_at = 6 + rng() % 12;
    storage::RetryPolicy retry;
    retry.backoff_us = 0;
    std::vector<Pair> prefix;
    uint64_t failures = 0;
    // Replay recipe: on failure, print the exact op indices the injector hit
    // so the run can be reproduced with a fixed schedule (DESIGN.md §16).
    std::string schedule;
    // Pair index at which each committed epoch's snapshot was taken.
    std::map<uint64_t, size_t> epoch_to_pairs;
    {
      RTree<2> ta = BuildPointTree(a);
      RTree<2> tb = BuildPointTree(b);
      DistanceJoin<2> join(ta, tb, options);
      CursorOptions torn_options = MakeCursorOptions(path, 5);
      torn_options.fault_injection = faults;
      torn_options.retry = retry;
      JoinCursor<2, DistanceJoin<2>> cursor(&join, torn_options);
      ASSERT_TRUE(cursor.ok());
      JoinResult<2> r;
      uint64_t seen_checkpoints = 0;
      for (uint64_t i = 0; i < kill_after; ++i) {
        ASSERT_TRUE(cursor.Next(&r))
            << "fault schedule: " << cursor.store()->injector()->ScheduleString();
        prefix.push_back(AsTuple(r));
        if (cursor.cursor_stats().checkpoints_written > seen_checkpoints) {
          seen_checkpoints = cursor.cursor_stats().checkpoints_written;
          epoch_to_pairs[cursor.store()->last_epoch()] = prefix.size();
        }
      }
      failures = cursor.cursor_stats().checkpoint_failures;
      schedule = cursor.store()->injector()->ScheduleString();
    }

    // Phase 2: resume; invalid slots are skipped, falling back to the
    // newest epoch that committed cleanly.
    SCOPED_TRACE("fault schedule: " + schedule);
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    DistanceJoin<2> join(ta, tb, options);
    JoinCursor<2, DistanceJoin<2>> cursor(&join, MakeCursorOptions(path));
    ASSERT_TRUE(cursor.ok());
    JoinResult<2> r;
    std::vector<Pair> combined;
    if (cursor.ResumeLatest()) {
      const uint64_t epoch = cursor.store()->last_epoch();
      ASSERT_TRUE(epoch_to_pairs.count(epoch) > 0);
      combined.assign(prefix.begin(),
                      prefix.begin() + epoch_to_pairs[epoch]);
    }
    while (cursor.Next(&r)) combined.push_back(AsTuple(r));
    EXPECT_EQ(combined, expected);
    (void)failures;  // any torn checkpoint was survived by the run above
  }
}

TEST(JoinCursor, CheckpointFailureDegradesGracefully) {
  const auto a = MakePoints(60, 47);
  const auto b = MakePoints(60, 48);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  RTree<2> ta2 = BuildPointTree(a);
  RTree<2> tb2 = BuildPointTree(b);
  DistanceJoinOptions options;
  options.max_pairs = 50;
  DistanceJoin<2> reference(ta2, tb2, options);
  const std::vector<Pair> expected = Drain(&reference);

  storage::FaultInjectionOptions faults;
  faults.hard_write_after = 0;  // snapshot store is a dead disk
  storage::RetryPolicy retry;
  retry.backoff_us = 0;
  DistanceJoin<2> join(ta, tb, options);
  CursorOptions dead_options = MakeCursorOptions("", 10);
  dead_options.fault_injection = faults;
  dead_options.retry = retry;
  JoinCursor<2, DistanceJoin<2>> cursor(&join, dead_options);
  // The join must complete correctly even though every checkpoint fails.
  std::vector<Pair> pairs;
  JoinResult<2> r;
  while (cursor.Next(&r)) pairs.push_back(AsTuple(r));
  EXPECT_EQ(pairs, expected);
  EXPECT_EQ(cursor.status(), JoinStatus::kExhausted);
  EXPECT_EQ(cursor.cursor_stats().checkpoints_written, 0u);
  EXPECT_GE(cursor.cursor_stats().checkpoint_failures, 4u);
}

// A torn commit under commit_retry: the first WriteSnapshot fails, the
// bounded retry re-runs the shadow-paged commit, and the checkpoint lands —
// counted as a retry, not a failure. Write indices on a fresh store are
// deterministic: 0-1 initialize the header slots, 2-3 extend the file for
// the first one-page payload, 4 is the payload itself, 5 the header.
TEST(JoinCursor, CommitRetryRecoversTornCheckpoint) {
  const auto a = MakePoints(60, 71);
  const auto b = MakePoints(60, 72);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  options.max_pairs = 40;
  DistanceJoin<2> join(ta, tb, options);

  storage::FaultInjectionOptions faults;
  faults.torn_write_at = 4;  // tears the first commit's payload write
  CursorOptions retry_options = MakeCursorOptions();
  retry_options.fault_injection = faults;
  retry_options.retry.backoff_us = 0;
  retry_options.commit_retry = {.max_attempts = 3, .backoff_us = 0};
  JoinCursor<2, DistanceJoin<2>> cursor(&join, retry_options);
  ASSERT_TRUE(cursor.ok());
  EXPECT_TRUE(cursor.Checkpoint());
  EXPECT_EQ(cursor.cursor_stats().checkpoint_retries, 1u);
  EXPECT_EQ(cursor.cursor_stats().checkpoint_failures, 0u);
  EXPECT_EQ(cursor.cursor_stats().checkpoints_written, 1u);
  EXPECT_EQ(cursor.store()->stats().write_failures, 1u);
  std::string payload;
  EXPECT_TRUE(cursor.store()->ReadLatest(&payload));
}

// The default commit policy (one attempt) preserves the historical
// fail-once behavior: the torn commit is a counted failure, and only the
// *next* checkpoint lands.
TEST(JoinCursor, DefaultCommitPolicyFailsOnceWithoutRetrying) {
  const auto a = MakePoints(60, 73);
  const auto b = MakePoints(60, 74);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  options.max_pairs = 40;
  DistanceJoin<2> join(ta, tb, options);

  storage::FaultInjectionOptions faults;
  faults.torn_write_at = 4;
  CursorOptions torn_options = MakeCursorOptions();
  torn_options.fault_injection = faults;
  torn_options.retry.backoff_us = 0;
  JoinCursor<2, DistanceJoin<2>> cursor(&join, torn_options);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.Checkpoint());
  EXPECT_EQ(cursor.cursor_stats().checkpoint_retries, 0u);
  EXPECT_EQ(cursor.cursor_stats().checkpoint_failures, 1u);
  EXPECT_TRUE(cursor.Checkpoint());  // the torn fault was one-shot
  EXPECT_EQ(cursor.cursor_stats().checkpoints_written, 1u);
}

// Cursor-level S-slot fallback: with snapshot_slots = 4 and the two newest
// checkpoint epochs corrupted on disk ("crash during a bad burst"), resume
// lands on the third-newest checkpoint and the combined stream still
// matches the uninterrupted reference.
TEST(JoinCursor, MultiSlotResumeFallsBackPastConsecutiveCorruptEpochs) {
  const std::string path = TempPath("cursor_multislot.snap");
  std::remove(path.c_str());
  const auto a = MakePoints(80, 75);
  const auto b = MakePoints(80, 76);
  DistanceJoinOptions options;
  options.max_pairs = 100;

  std::vector<Pair> expected;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    DistanceJoin<2> reference(ta, tb, options);
    expected = Drain(&reference);
  }

  // Phase 1: checkpoint every 5 pairs for 25 pairs -> epochs 1..5, epoch e
  // taken at pair 5*e; then crash.
  std::vector<Pair> prefix;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    DistanceJoin<2> join(ta, tb, options);
    CursorOptions slot_options = MakeCursorOptions(path, 5);
    slot_options.snapshot_slots = 4;
    JoinCursor<2, DistanceJoin<2>> cursor(&join, slot_options);
    ASSERT_TRUE(cursor.ok());
    JoinResult<2> r;
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(cursor.Next(&r));
      prefix.push_back(AsTuple(r));
    }
    ASSERT_EQ(cursor.cursor_stats().checkpoints_written, 5u);
    ASSERT_EQ(cursor.store()->last_epoch(), 5u);
  }
  // Corrupt the headers of epochs 5 and 4 (slots 5%4 = 1 and 4%4 = 0).
  CorruptPage(path, 4096, 1);
  CorruptPage(path, 4096, 0);

  // Phase 2: resume must fall back to epoch 3 (pair 15).
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoin<2> join(ta, tb, options);
  CursorOptions slot_options = MakeCursorOptions(path);
  slot_options.snapshot_slots = 4;
  JoinCursor<2, DistanceJoin<2>> cursor(&join, slot_options);
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor.ResumeLatest());
  EXPECT_EQ(cursor.store()->last_epoch(), 3u);
  EXPECT_EQ(cursor.cursor_stats().snapshot_fallbacks, 2u);
  std::vector<Pair> combined(prefix.begin(), prefix.begin() + 15);
  JoinResult<2> r;
  while (cursor.Next(&r)) combined.push_back(AsTuple(r));
  EXPECT_EQ(combined, expected);
}

TEST(JoinCursor, ResumeLatestOnEmptyStoreStartsFromScratch) {
  const auto a = MakePoints(40, 49);
  const auto b = MakePoints(40, 50);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  options.max_pairs = 20;
  DistanceJoin<2> join(ta, tb, options);
  JoinCursor<2, DistanceJoin<2>> cursor(&join, MakeCursorOptions());
  EXPECT_FALSE(cursor.ResumeLatest());
  JoinResult<2> r;
  EXPECT_TRUE(cursor.Next(&r));
}

TEST(JoinCursor, WorksWithSemiJoinEngine) {
  const auto a = MakePoints(80, 51);
  const auto b = MakePoints(80, 52);
  RTree<2> ref_ta = BuildPointTree(a);
  RTree<2> ref_tb = BuildPointTree(b);
  DistanceSemiJoin<2> reference(ref_ta, ref_tb, SemiJoinOptions{});
  const std::vector<Pair> expected = Drain(&reference);

  const std::string path = TempPath("cursor_semi.snap");
  std::remove(path.c_str());
  std::vector<Pair> combined;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    SemiJoinOptions options;
    util::StopSource source;
    options.join.stop_token = source.token();
    DistanceSemiJoin<2> semi(ta, tb, options);
    JoinCursor<2, DistanceSemiJoin<2>> cursor(&semi,
                                              MakeCursorOptions(path));
    JoinResult<2> r;
    for (int i = 0; i < 33; ++i) {
      ASSERT_TRUE(cursor.Next(&r));
      combined.push_back(AsTuple(r));
    }
    source.RequestStop();
    EXPECT_FALSE(cursor.Next(&r));
    EXPECT_EQ(cursor.status(), JoinStatus::kSuspended);
  }
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceSemiJoin<2> semi(ta, tb, SemiJoinOptions{});
  JoinCursor<2, DistanceSemiJoin<2>> cursor(&semi, MakeCursorOptions(path));
  ASSERT_TRUE(cursor.ResumeLatest());
  JoinResult<2> r;
  while (cursor.Next(&r)) combined.push_back(AsTuple(r));
  EXPECT_EQ(combined, expected);
  ExpectStatsEqual(semi.stats(), reference.stats());
}

// --- NN suspend hooks --------------------------------------------------------

TEST(IncNearestSuspend, StopTokenSuspendsAndContinues) {
  const auto pts = MakePoints(200, 61);
  RTree<2> tree = BuildPointTree(pts);
  const Point<2> query{500.0, 500.0};

  IncNearestNeighbor<2> reference(tree, query);
  std::vector<std::pair<ObjectId, double>> expected;
  IncNearestNeighbor<2>::Result hit;
  while (reference.Next(&hit)) expected.push_back({hit.id, hit.distance});

  util::StopSource source;
  IncNearestNeighbor<2> nn(tree, query);
  nn.set_stop_token(source.token());
  std::vector<std::pair<ObjectId, double>> got;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(nn.Next(&hit));
    got.push_back({hit.id, hit.distance});
  }
  source.RequestStop();
  EXPECT_FALSE(nn.Next(&hit));
  EXPECT_TRUE(nn.suspended());
  source.Clear();
  while (nn.Next(&hit)) got.push_back({hit.id, hit.distance});
  EXPECT_FALSE(nn.suspended());  // final false was exhaustion
  EXPECT_EQ(got, expected);
}

TEST(IncFarthestSuspend, StopTokenSuspendsAndContinues) {
  const auto pts = MakePoints(200, 62);
  RTree<2> tree = BuildPointTree(pts);
  const Point<2> query{500.0, 500.0};

  IncFarthestNeighbor<2> reference(tree, query);
  std::vector<std::pair<ObjectId, double>> expected;
  IncFarthestNeighbor<2>::Result hit;
  while (reference.Next(&hit)) expected.push_back({hit.id, hit.distance});

  util::StopSource source;
  IncFarthestNeighbor<2> fn(tree, query);
  fn.set_stop_token(source.token());
  std::vector<std::pair<ObjectId, double>> got;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fn.Next(&hit));
    got.push_back({hit.id, hit.distance});
  }
  source.RequestStop();
  EXPECT_FALSE(fn.Next(&hit));
  EXPECT_TRUE(fn.suspended());
  source.Clear();
  while (fn.Next(&hit)) got.push_back({hit.id, hit.distance});
  EXPECT_EQ(got, expected);
}

// --- NN snapshot resume ------------------------------------------------------

// NN analogue of CheckJoinResumeEquivalence: snapshot after `prefix` pops,
// restore into a freshly built engine, and check the combined stream and
// final engine stats against an uninterrupted run.
template <typename Engine>
void CheckNeighborResumeEquivalence(const IncNeighborOptions& options,
                                    size_t prefix,
                                    const std::vector<Point<2>>& pts,
                                    const Point<2>& query) {
  SCOPED_TRACE(::testing::Message() << "hybrid=" << options.use_hybrid_queue
                                    << " prefix=" << prefix);
  using Hit = std::pair<ObjectId, double>;
  RTree<2> ref_tree = BuildPointTree(pts);
  Engine reference(ref_tree, query, options);
  std::vector<Hit> expected;
  typename Engine::Result hit;
  while (reference.Next(&hit)) expected.push_back({hit.id, hit.distance});
  ASSERT_GT(expected.size(), prefix);

  snapshot::Blob blob;
  std::vector<Hit> combined;
  {
    RTree<2> tree = BuildPointTree(pts);
    Engine nn(tree, query, options);
    for (size_t i = 0; i < prefix; ++i) {
      ASSERT_TRUE(nn.Next(&hit));
      combined.push_back({hit.id, hit.distance});
    }
    ASSERT_TRUE(nn.SaveState(&blob));
  }

  RTree<2> tree = BuildPointTree(pts);
  Engine resumed(tree, query, options);
  snapshot::BlobReader reader(blob.data(), blob.size());
  ASSERT_TRUE(resumed.RestoreState(&reader));
  while (resumed.Next(&hit)) combined.push_back({hit.id, hit.distance});
  EXPECT_EQ(combined, expected);
  ExpectStatsEqual(resumed.engine_stats(), reference.engine_stats());
}

TEST(IncNearestResume, MemoryQueue) {
  const auto pts = MakePoints(200, 63);
  CheckNeighborResumeEquivalence<IncNearestNeighbor<2>>(
      {}, 73, pts, Point<2>{500.0, 500.0});
}

TEST(IncNearestResume, HybridQueue) {
  const auto pts = MakePoints(200, 64);
  IncNeighborOptions options;
  options.use_hybrid_queue = true;
  options.hybrid.tier_width = 25.0;  // small tiers: disk buckets populated
  CheckNeighborResumeEquivalence<IncNearestNeighbor<2>>(
      options, 121, pts, Point<2>{500.0, 500.0});
}

TEST(IncFarthestResume, MemoryQueue) {
  const auto pts = MakePoints(200, 65);
  CheckNeighborResumeEquivalence<IncFarthestNeighbor<2>>(
      {}, 73, pts, Point<2>{500.0, 500.0});
}

TEST(IncNearestResume, FuzzRandomSuspensionPoints) {
  std::mt19937_64 rng(20260806);
  const auto pts = MakePoints(150, 66);
  const Point<2> query{250.0, 750.0};
  for (const bool hybrid : {false, true}) {
    IncNeighborOptions options;
    options.use_hybrid_queue = hybrid;
    options.hybrid.tier_width = 25.0;
    for (int round = 0; round < 3; ++round) {
      const size_t prefix = rng() % 140;
      CheckNeighborResumeEquivalence<IncNearestNeighbor<2>>(options, prefix,
                                                            pts, query);
    }
  }
}

TEST(IncNearestResume, FingerprintMismatchIsRejected) {
  const auto pts = MakePoints(80, 67);
  RTree<2> tree = BuildPointTree(pts);
  IncNearestNeighbor<2> nn(tree, Point<2>{10.0, 20.0});
  IncNearestNeighbor<2>::Result hit;
  ASSERT_TRUE(nn.Next(&hit));
  snapshot::Blob blob;
  ASSERT_TRUE(nn.SaveState(&blob));

  // Different query point: restore must refuse.
  IncNearestNeighbor<2> other(tree, Point<2>{11.0, 20.0});
  snapshot::BlobReader reader(blob.data(), blob.size());
  EXPECT_FALSE(other.RestoreState(&reader));
}

TEST(JoinCursor, WorksWithNearestNeighborEngine) {
  const auto pts = MakePoints(150, 68);
  const Point<2> query{333.0, 444.0};
  using Hit = std::pair<ObjectId, double>;
  RTree<2> ref_tree = BuildPointTree(pts);
  IncNearestNeighbor<2> reference(ref_tree, query);
  std::vector<Hit> expected;
  IncNearestNeighbor<2>::Result hit;
  while (reference.Next(&hit)) expected.push_back({hit.id, hit.distance});

  const std::string path = TempPath("cursor_nn.snap");
  std::remove(path.c_str());
  std::vector<Hit> combined;
  {
    RTree<2> tree = BuildPointTree(pts);
    util::StopSource source;
    IncNeighborOptions options;
    options.stop_token = source.token();
    IncNearestNeighbor<2> nn(tree, query, options);
    JoinCursor<2, IncNearestNeighbor<2>> cursor(&nn, MakeCursorOptions(path));
    for (int i = 0; i < 47; ++i) {
      ASSERT_TRUE(cursor.Next(&hit));
      combined.push_back({hit.id, hit.distance});
    }
    source.RequestStop();
    EXPECT_FALSE(cursor.Next(&hit));
    EXPECT_EQ(cursor.status(), JoinStatus::kSuspended);
  }
  RTree<2> tree = BuildPointTree(pts);
  IncNearestNeighbor<2> nn(tree, query);
  JoinCursor<2, IncNearestNeighbor<2>> cursor(&nn, MakeCursorOptions(path));
  ASSERT_TRUE(cursor.ResumeLatest());
  while (cursor.Next(&hit)) combined.push_back({hit.id, hit.distance});
  EXPECT_EQ(combined, expected);
  ExpectStatsEqual(nn.engine_stats(), reference.engine_stats());
}

TEST(JoinCursor, WorksWithWithinJoinEngine) {
  const auto a = MakePoints(120, 69);
  const auto b = MakePoints(120, 70);
  WithinJoinOptions options;
  options.epsilon = 80.0;
  RTree<2> ref_ta = BuildPointTree(a);
  RTree<2> ref_tb = BuildPointTree(b);
  IncWithinJoin<2> reference(ref_ta, ref_tb, options);
  const std::vector<Pair> expected = Drain(&reference);
  ASSERT_GT(expected.size(), 40u);

  const std::string path = TempPath("cursor_within.snap");
  std::remove(path.c_str());
  std::vector<Pair> combined;
  {
    RTree<2> ta = BuildPointTree(a);
    RTree<2> tb = BuildPointTree(b);
    util::StopSource source;
    WithinJoinOptions stoppable = options;
    stoppable.stop_token = source.token();
    IncWithinJoin<2> join(ta, tb, stoppable);
    JoinCursor<2, IncWithinJoin<2>> cursor(&join, MakeCursorOptions(path));
    JoinResult<2> r;
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(cursor.Next(&r));
      combined.push_back(AsTuple(r));
    }
    source.RequestStop();
    EXPECT_FALSE(cursor.Next(&r));
    EXPECT_EQ(cursor.status(), JoinStatus::kSuspended);
  }
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  IncWithinJoin<2> join(ta, tb, options);
  JoinCursor<2, IncWithinJoin<2>> cursor(&join, MakeCursorOptions(path));
  ASSERT_TRUE(cursor.ResumeLatest());
  JoinResult<2> r;
  while (cursor.Next(&r)) combined.push_back(AsTuple(r));
  EXPECT_EQ(combined, expected);
  ExpectStatsEqual(join.stats(), reference.stats());
}

}  // namespace
}  // namespace sdj
