// Golden-stream fixtures: the exact pair/neighbor streams and final
// statistics of every traversal engine, recorded from the pre-refactor
// implementations and committed under tests/golden/. Any engine change that
// alters a stream or a statistic fails here with a diff — the contract the
// best-first core refactor (DESIGN.md §13) is held to.
//
// Regenerate (after an INTENTIONAL stream/stat change only):
//   SDJ_UPDATE_GOLDEN=1 build/tests/sdjoin_tests --gtest_filter=GoldenStream*
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "core/within_join.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "join_test_util.h"
#include "core/shard_merge.h"
#include "nn/inc_farthest.h"
#include "nn/inc_nearest.h"
#include "nn/sharded_neighbor.h"
#include "rtree/rtree.h"

namespace sdj {
namespace {

// Streams are capped so fixtures stay small; stats are taken after the cap
// (or exhaustion, whichever comes first).
constexpr uint64_t kPairCap = 300;
constexpr uint64_t kNeighborCap = 250;

bool UpdateMode() { return std::getenv("SDJ_UPDATE_GOLDEN") != nullptr; }

std::string GoldenPath(const std::string& name) {
  return std::string(SDJ_GOLDEN_DIR) + "/" + name + ".golden";
}

void AppendLine(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out->append(buf);
  out->push_back('\n');
}

void AppendStats(std::string* out, const JoinStats& s) {
  AppendLine(out, "stat pairs_reported %llu",
             static_cast<unsigned long long>(s.pairs_reported));
  AppendLine(out, "stat object_distance_calcs %llu",
             static_cast<unsigned long long>(s.object_distance_calcs));
  AppendLine(out, "stat total_distance_calcs %llu",
             static_cast<unsigned long long>(s.total_distance_calcs));
  AppendLine(out, "stat queue_pushes %llu",
             static_cast<unsigned long long>(s.queue_pushes));
  AppendLine(out, "stat queue_pops %llu",
             static_cast<unsigned long long>(s.queue_pops));
  AppendLine(out, "stat max_queue_size %llu",
             static_cast<unsigned long long>(s.max_queue_size));
  AppendLine(out, "stat node_io %llu",
             static_cast<unsigned long long>(s.node_io));
  AppendLine(out, "stat node_accesses %llu",
             static_cast<unsigned long long>(s.node_accesses));
  AppendLine(out, "stat nodes_expanded %llu",
             static_cast<unsigned long long>(s.nodes_expanded));
  AppendLine(out, "stat pruned_by_range %llu",
             static_cast<unsigned long long>(s.pruned_by_range));
  AppendLine(out, "stat pruned_by_estimate %llu",
             static_cast<unsigned long long>(s.pruned_by_estimate));
  AppendLine(out, "stat pruned_by_bound %llu",
             static_cast<unsigned long long>(s.pruned_by_bound));
  AppendLine(out, "stat pruned_by_filter %llu",
             static_cast<unsigned long long>(s.pruned_by_filter));
  AppendLine(out, "stat filtered_reported %llu",
             static_cast<unsigned long long>(s.filtered_reported));
  AppendLine(out, "stat restarts %llu",
             static_cast<unsigned long long>(s.restarts));
  AppendLine(out, "stat spill_fallbacks %llu",
             static_cast<unsigned long long>(s.spill_fallbacks));
  AppendLine(out, "stat batch_kernel_invocations %llu",
             static_cast<unsigned long long>(s.batch_kernel_invocations));
  AppendLine(out, "stat parallel_expansions %llu",
             static_cast<unsigned long long>(s.parallel_expansions));
}

// Compares `actual` against the committed fixture (or rewrites it in update
// mode). On mismatch, reports the first differing line.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (UpdateMode()) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (run with SDJ_UPDATE_GOLDEN=1 to record)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected == actual) return;
  std::istringstream e(expected);
  std::istringstream a(actual);
  std::string el;
  std::string al;
  int line = 0;
  while (true) {
    ++line;
    const bool eok = static_cast<bool>(std::getline(e, el));
    const bool aok = static_cast<bool>(std::getline(a, al));
    if (!eok && !aok) break;
    if (el != al || eok != aok) {
      FAIL() << name << " diverges at line " << line << "\n  golden: "
             << (eok ? el : "<eof>") << "\n  actual: " << (aok ? al : "<eof>");
    }
    if (!eok || !aok) break;
  }
  FAIL() << name << ": content differs (lengths " << expected.size() << " vs "
         << actual.size() << ")";
}

const std::vector<Point<2>>& SetA() {
  static const auto* points = new std::vector<Point<2>>(
      data::GenerateUniform(600, Rect<2>({0, 0}, {100, 100}), 7001));
  return *points;
}

const std::vector<Point<2>>& SetB() {
  static const auto* points = new std::vector<Point<2>>(
      data::GenerateUniform(600, Rect<2>({0, 0}, {100, 100}), 7002));
  return *points;
}

const char* MetricName(Metric m) {
  switch (m) {
    case Metric::kEuclidean:
      return "l2";
    case Metric::kManhattan:
      return "l1";
    case Metric::kChessboard:
      return "linf";
  }
  return "?";
}

template <typename Engine>
std::string DrainJoin(Engine* join, uint64_t cap) {
  std::string out;
  JoinResult<2> pair;
  uint64_t produced = 0;
  while (produced < cap && join->Next(&pair)) {
    AppendLine(&out, "pair %llu %llu %.17g",
               static_cast<unsigned long long>(pair.id1),
               static_cast<unsigned long long>(pair.id2), pair.distance);
    ++produced;
  }
  AppendLine(&out, "status %s", JoinStatusName(join->status()));
  AppendStats(&out, join->stats());
  return out;
}

void RunJoinConfig(const std::string& name, const DistanceJoinOptions& options) {
  RTree<2> tree1 = test::BuildPointTree(SetA());
  RTree<2> tree2 = test::BuildPointTree(SetB());
  DistanceJoin<2> join(tree1, tree2, options);
  CheckGolden(name, DrainJoin(&join, kPairCap));
}

TEST(GoldenStream, DistanceJoinMatrix) {
  // Metrics x queue types x thread counts on the Simultaneous policy (the
  // one with the sharded classify), plus each remaining node policy and the
  // reverse ordering once.
  for (const Metric metric :
       {Metric::kEuclidean, Metric::kManhattan, Metric::kChessboard}) {
    for (const bool hybrid : {false, true}) {
      for (const int threads : {1, 4}) {
        DistanceJoinOptions options;
        options.metric = metric;
        options.node_policy = NodeProcessingPolicy::kSimultaneous;
        options.use_hybrid_queue = hybrid;
        options.num_threads = threads;
        RunJoinConfig(std::string("join_") + MetricName(metric) + "_" +
                          (hybrid ? "hybrid" : "mem") + "_t" +
                          std::to_string(threads),
                      options);
      }
    }
  }
  for (const NodeProcessingPolicy policy :
       {NodeProcessingPolicy::kBasic, NodeProcessingPolicy::kEven,
        NodeProcessingPolicy::kDeferredLeaf}) {
    DistanceJoinOptions options;
    options.node_policy = policy;
    RunJoinConfig("join_policy" +
                      std::to_string(static_cast<int>(policy)) + "_mem_t1",
                  options);
  }
  {
    DistanceJoinOptions options;
    options.reverse_order = true;
    RunJoinConfig("join_reverse_mem_t1", options);
  }
}

TEST(GoldenStream, DistanceJoinObjectRects) {
  // Object-bounding-rectangle mode: exact distances via callback.
  DistanceJoinOptions options;
  options.exact_object_distance = [](ObjectId a, ObjectId b) {
    return Dist(SetA()[a], SetB()[b], Metric::kEuclidean);
  };
  RunJoinConfig("join_obr_mem_t1", options);
}

TEST(GoldenStream, SemiJoinMatrix) {
  struct Config {
    const char* name;
    SemiJoinFilter filter;
    SemiJoinBound bound;
    bool hybrid;
  };
  const Config configs[] = {
      {"semi_outside_mem", SemiJoinFilter::kOutside, SemiJoinBound::kNone,
       false},
      {"semi_inside1_mem", SemiJoinFilter::kInside1, SemiJoinBound::kNone,
       false},
      {"semi_inside2_globalall_mem", SemiJoinFilter::kInside2,
       SemiJoinBound::kGlobalAll, false},
      {"semi_inside2_globalall_hybrid", SemiJoinFilter::kInside2,
       SemiJoinBound::kGlobalAll, true},
  };
  for (const Config& config : configs) {
    RTree<2> tree1 = test::BuildPointTree(SetA());
    RTree<2> tree2 = test::BuildPointTree(SetB());
    SemiJoinOptions options;
    options.filter = config.filter;
    options.bound = config.bound;
    options.join.use_hybrid_queue = config.hybrid;
    DistanceSemiJoin<2> semi(tree1, tree2, options);
    CheckGolden(config.name, DrainJoin(&semi, kPairCap));
  }
}

// Quantized trees + a finite cutoff engage the integer code screen
// (DESIGN.md §17). One fixture per metric pins the screened stream AND
// stats; screening off and every SIMD dispatch tier must then reproduce the
// fixture byte-for-byte — the screen may only skip decode/kernel work,
// never change what the engine reports.
TEST(GoldenStream, QuantizedScreenedJoin) {
  for (const Metric metric :
       {Metric::kEuclidean, Metric::kManhattan, Metric::kChessboard}) {
    const std::string name =
        std::string("join_quant_screen_") + MetricName(metric);
    std::string reference;
    for (const bool screen : {true, false}) {
      for (const simd::Isa isa : simd::SupportedIsas()) {
        SCOPED_TRACE(std::string(MetricName(metric)) +
                     (screen ? " screen=on " : " screen=off ") +
                     simd::IsaName(isa));
        RTree<2> tree1 = test::BuildPointTree(SetA(), 512, /*bulk=*/true,
                                              NodeEncoding::kQuantized);
        RTree<2> tree2 = test::BuildPointTree(SetB(), 512, /*bulk=*/true,
                                              NodeEncoding::kQuantized);
        DistanceJoinOptions options;
        options.metric = metric;
        options.max_distance = 3.0;
        options.screen_codes = screen;
        options.kernel_isa = isa;
        DistanceJoin<2> join(tree1, tree2, options);
        const std::string actual = DrainJoin(&join, kPairCap);
        if (reference.empty()) {
          reference = actual;
          CheckGolden(name, reference);
        } else {
          ASSERT_EQ(actual, reference);
        }
      }
    }
  }
}

TEST(GoldenStream, QuantizedScreenedWithinJoin) {
  const std::string name = "within_quant_screen_l2";
  std::string reference;
  for (const bool screen : {true, false}) {
    for (const simd::Isa isa : simd::SupportedIsas()) {
      SCOPED_TRACE(std::string(screen ? "screen=on " : "screen=off ") +
                   simd::IsaName(isa));
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, /*bulk=*/true,
                                            NodeEncoding::kQuantized);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, /*bulk=*/true,
                                            NodeEncoding::kQuantized);
      WithinJoinOptions options;
      options.epsilon = 2.0;
      options.screen_codes = screen;
      options.kernel_isa = isa;
      IncWithinJoin<2> join(tree1, tree2, options);
      const std::string actual = DrainJoin(&join, kPairCap);
      if (reference.empty()) {
        reference = actual;
        CheckGolden(name, reference);
      } else {
        ASSERT_EQ(actual, reference);
      }
    }
  }
}

void AppendNnStats(std::string* out, const IncNearestStats& s) {
  AppendLine(out, "stat distance_calcs %llu",
             static_cast<unsigned long long>(s.distance_calcs));
  AppendLine(out, "stat queue_pushes %llu",
             static_cast<unsigned long long>(s.queue_pushes));
  AppendLine(out, "stat max_queue_size %llu",
             static_cast<unsigned long long>(s.max_queue_size));
  AppendLine(out, "stat nodes_expanded %llu",
             static_cast<unsigned long long>(s.nodes_expanded));
  AppendLine(out, "stat neighbors_reported %llu",
             static_cast<unsigned long long>(s.neighbors_reported));
}

template <typename Engine>
std::string DrainNeighbors(Engine* nn, uint64_t cap) {
  std::string out;
  typename Engine::Result hit;
  uint64_t produced = 0;
  while (produced < cap && nn->Next(&hit)) {
    AppendLine(&out, "hit %llu %.17g", static_cast<unsigned long long>(hit.id),
               hit.distance);
    ++produced;
  }
  AppendNnStats(&out, nn->stats());
  return out;
}

TEST(GoldenStream, IncNearest) {
  for (const Metric metric :
       {Metric::kEuclidean, Metric::kManhattan, Metric::kChessboard}) {
    RTree<2> tree = test::BuildPointTree(SetA());
    IncNearestNeighbor<2> nn(tree, {37.0, 61.0}, metric);
    CheckGolden(std::string("nn_nearest_") + MetricName(metric),
                DrainNeighbors(&nn, kNeighborCap));
  }
}

// Bounded nearest search on a quantized tree: the enqueue-time radius prune
// plus the code screen. As above, one fixture; screening off and every ISA
// tier must match it exactly.
TEST(GoldenStream, QuantizedScreenedNearest) {
  const std::string name = "nn_quant_screen_l2";
  std::string reference;
  for (const bool screen : {true, false}) {
    for (const simd::Isa isa : simd::SupportedIsas()) {
      SCOPED_TRACE(std::string(screen ? "screen=on " : "screen=off ") +
                   simd::IsaName(isa));
      RTree<2> tree = test::BuildPointTree(SetA(), 512, /*bulk=*/true,
                                           NodeEncoding::kQuantized);
      IncNeighborOptions options;
      options.max_distance = 15.0;
      options.screen_codes = screen;
      options.kernel_isa = isa;
      IncNearestNeighbor<2> nn(tree, {37.0, 61.0}, options);
      const std::string actual = DrainNeighbors(&nn, kNeighborCap);
      if (reference.empty()) {
        reference = actual;
        CheckGolden(name, reference);
      } else {
        ASSERT_EQ(actual, reference);
      }
    }
  }
}

TEST(GoldenStream, IncFarthest) {
  for (const Metric metric :
       {Metric::kEuclidean, Metric::kManhattan, Metric::kChessboard}) {
    RTree<2> tree = test::BuildPointTree(SetA());
    IncFarthestNeighbor<2> nn(tree, {37.0, 61.0}, metric);
    CheckGolden(std::string("nn_farthest_") + MetricName(metric),
                DrainNeighbors(&nn, kNeighborCap));
  }
}

// ---- sharded execution (DESIGN.md §18) --------------------------------------
//
// One fixture per policy x encoding, recorded from the SERIAL engine; every
// tested shard count must reproduce it byte-for-byte. Streams only (plus the
// terminal status): mid-stream statistics depend on how far the bounded
// shard lookahead ran ahead, which is scheduling-dependent by design — the
// stats identity at exhaustion is pinned by tests/shard_stream_test.cc.

template <typename Engine>
std::string DrainJoinStream(Engine* join, uint64_t cap) {
  std::string out;
  JoinResult<2> pair;
  uint64_t produced = 0;
  while (produced < cap && join->Next(&pair)) {
    AppendLine(&out, "pair %llu %llu %.17g",
               static_cast<unsigned long long>(pair.id1),
               static_cast<unsigned long long>(pair.id2), pair.distance);
    ++produced;
  }
  AppendLine(&out, "status %s", JoinStatusName(join->status()));
  return out;
}

template <typename Engine>
std::string DrainNeighborStream(Engine* nn, uint64_t cap) {
  std::string out;
  typename Engine::Result hit;
  uint64_t produced = 0;
  while (produced < cap && nn->Next(&hit)) {
    AppendLine(&out, "hit %llu %.17g", static_cast<unsigned long long>(hit.id),
               hit.distance);
    ++produced;
  }
  return out;
}

constexpr int kGoldenShardCounts[] = {1, 2, 4, 7};

const char* EncodingName(NodeEncoding encoding) {
  return encoding == NodeEncoding::kRaw ? "raw" : "quant";
}

TEST(GoldenStream, ShardedJoinMatrix) {
  for (const NodeEncoding encoding :
       {NodeEncoding::kRaw, NodeEncoding::kQuantized}) {
    const std::string name = std::string("shard_join_") + EncodingName(encoding);
    std::string reference;
    {
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      DistanceJoin<2> join(tree1, tree2, DistanceJoinOptions{});
      reference = DrainJoinStream(&join, kPairCap);
      CheckGolden(name, reference);
    }
    for (const int shards : kGoldenShardCounts) {
      SCOPED_TRACE(name + " shards=" + std::to_string(shards));
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      DistanceJoinOptions options;
      options.shards = shards;
      ShardedDistanceJoin<2> join(tree1, tree2, options);
      ASSERT_EQ(DrainJoinStream(&join, kPairCap), reference);
    }
  }
}

TEST(GoldenStream, ShardedWithinMatrix) {
  for (const NodeEncoding encoding :
       {NodeEncoding::kRaw, NodeEncoding::kQuantized}) {
    const std::string name =
        std::string("shard_within_") + EncodingName(encoding);
    std::string reference;
    WithinJoinOptions base;
    base.epsilon = 2.0;
    {
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      IncWithinJoin<2> join(tree1, tree2, base);
      reference = DrainJoinStream(&join, kPairCap);
      CheckGolden(name, reference);
    }
    for (const int shards : kGoldenShardCounts) {
      SCOPED_TRACE(name + " shards=" + std::to_string(shards));
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      WithinJoinOptions options = base;
      options.shards = shards;
      ShardedWithinJoin<2> join(tree1, tree2, options);
      ASSERT_EQ(DrainJoinStream(&join, kPairCap), reference);
    }
  }
}

TEST(GoldenStream, ShardedSemiMatrix) {
  for (const NodeEncoding encoding :
       {NodeEncoding::kRaw, NodeEncoding::kQuantized}) {
    const std::string name = std::string("shard_semi_") + EncodingName(encoding);
    std::string reference;
    SemiJoinOptions base;
    base.filter = SemiJoinFilter::kInside2;
    base.bound = SemiJoinBound::kGlobalAll;
    {
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      DistanceSemiJoin<2> semi(tree1, tree2, base);
      reference = DrainJoinStream(&semi, kPairCap);
      CheckGolden(name, reference);
    }
    for (const int shards : kGoldenShardCounts) {
      SCOPED_TRACE(name + " shards=" + std::to_string(shards));
      RTree<2> tree1 = test::BuildPointTree(SetA(), 512, true, encoding);
      RTree<2> tree2 = test::BuildPointTree(SetB(), 512, true, encoding);
      SemiJoinOptions options = base;
      options.join.shards = shards;
      ShardedDistanceSemiJoin<2> semi(tree1, tree2, options);
      ASSERT_EQ(DrainJoinStream(&semi, kPairCap), reference);
    }
  }
}

TEST(GoldenStream, ShardedNeighborMatrix) {
  const Point<2> query{37.0, 61.0};
  for (const NodeEncoding encoding :
       {NodeEncoding::kRaw, NodeEncoding::kQuantized}) {
    {
      const std::string name = std::string("shard_nn_") + EncodingName(encoding);
      std::string reference;
      {
        RTree<2> tree = test::BuildPointTree(SetA(), 512, true, encoding);
        IncNearestNeighbor<2> nn(tree, query);
        reference = DrainNeighborStream(&nn, kNeighborCap);
        CheckGolden(name, reference);
      }
      for (const int shards : kGoldenShardCounts) {
        SCOPED_TRACE(name + " shards=" + std::to_string(shards));
        RTree<2> tree = test::BuildPointTree(SetA(), 512, true, encoding);
        IncNeighborOptions options;
        options.shards = shards;
        ShardedIncNearest<2> nn(tree, query, options);
        ASSERT_EQ(DrainNeighborStream(&nn, kNeighborCap), reference);
      }
    }
    {
      const std::string name =
          std::string("shard_far_") + EncodingName(encoding);
      std::string reference;
      {
        RTree<2> tree = test::BuildPointTree(SetA(), 512, true, encoding);
        IncFarthestNeighbor<2> nn(tree, query);
        reference = DrainNeighborStream(&nn, kNeighborCap);
        CheckGolden(name, reference);
      }
      for (const int shards : kGoldenShardCounts) {
        SCOPED_TRACE(name + " shards=" + std::to_string(shards));
        RTree<2> tree = test::BuildPointTree(SetA(), 512, true, encoding);
        IncNeighborOptions options;
        options.shards = shards;
        ShardedIncFarthest<2> nn(tree, query, options);
        ASSERT_EQ(DrainNeighborStream(&nn, kNeighborCap), reference);
      }
    }
  }
}

}  // namespace
}  // namespace sdj
