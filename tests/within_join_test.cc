// Incremental within-distance join (core/within_join.h): randomized
// cross-validation against the synchronized-traversal baseline
// (baseline/within_join.h) and against DistanceJoin restricted to [0, eps],
// plus the cross-cutting behavior it inherits from the best-first core —
// serial/parallel/hybrid stream identity, suspend/resume, snapshots.
#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/within_join.h"
#include "core/distance_join.h"
#include "core/within_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "rtree/rtree.h"
#include "util/stop_token.h"

namespace sdj {
namespace {

template <typename Engine>
std::vector<JoinResult<2>> Drain(Engine* join, uint64_t cap = ~0ull) {
  std::vector<JoinResult<2>> out;
  JoinResult<2> pair;
  while (out.size() < cap && join->Next(&pair)) out.push_back(pair);
  return out;
}

// Canonical order for set comparison: distances are bit-identical between
// engines (same MinDist kernel on the same rects), so exact sort + exact
// compare is valid; only the ordering of equal-distance pairs may differ.
void SortCanonical(std::vector<JoinResult<2>>* v) {
  std::sort(v->begin(), v->end(),
            [](const JoinResult<2>& a, const JoinResult<2>& b) {
              return std::tie(a.distance, a.id1, a.id2) <
                     std::tie(b.distance, b.id1, b.id2);
            });
}

void ExpectSameSet(std::vector<JoinResult<2>> a, std::vector<JoinResult<2>> b) {
  SortCanonical(&a);
  SortCanonical(&b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id1, b[i].id1) << i;
    EXPECT_EQ(a[i].id2, b[i].id2) << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << i;
  }
}

void ExpectSameStream(const std::vector<JoinResult<2>>& a,
                      const std::vector<JoinResult<2>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id1, b[i].id1) << i;
    EXPECT_EQ(a[i].id2, b[i].id2) << i;
    EXPECT_EQ(a[i].distance, b[i].distance) << i;
  }
}

TEST(IncWithinJoin, MatchesBaselineOnRandomizedWorkloads) {
  for (const uint32_t seed : {101u, 202u, 303u}) {
    for (const double eps : {0.5, 2.0, 8.0}) {
      for (const Metric metric :
           {Metric::kEuclidean, Metric::kManhattan, Metric::kChessboard}) {
        const auto pa =
            data::GenerateUniform(400, Rect<2>({0, 0}, {100, 100}), seed);
        const auto pb =
            data::GenerateUniform(400, Rect<2>({0, 0}, {100, 100}), seed + 7);
        RTree<2> tree1 = test::BuildPointTree(pa);
        RTree<2> tree2 = test::BuildPointTree(pb);

        WithinJoinOptions options;
        options.epsilon = eps;
        options.metric = metric;
        IncWithinJoin<2> join(tree1, tree2, options);
        const auto incremental = Drain(&join);
        EXPECT_EQ(join.status(), JoinStatus::kExhausted);

        // The incremental stream ascends and respects eps (inclusive).
        for (size_t i = 0; i < incremental.size(); ++i) {
          EXPECT_LE(incremental[i].distance, eps);
          if (i > 0) {
            EXPECT_GE(incremental[i].distance, incremental[i - 1].distance);
          }
        }
        const auto reference =
            baseline::WithinJoinSorted(tree1, tree2, eps, metric);
        ExpectSameSet(incremental, reference);
      }
    }
  }
}

TEST(IncWithinJoin, MatchesDistanceJoinRestrictedToEps) {
  const auto pa = data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 41);
  const auto pb = data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 42);
  RTree<2> tree1 = test::BuildPointTree(pa);
  RTree<2> tree2 = test::BuildPointTree(pb);
  const double eps = 3.0;

  WithinJoinOptions options;
  options.epsilon = eps;
  IncWithinJoin<2> within(tree1, tree2, options);

  DistanceJoinOptions join_options;
  join_options.max_distance = eps;
  DistanceJoin<2> join(tree1, tree2, join_options);

  ExpectSameSet(Drain(&within), Drain(&join));
}

TEST(IncWithinJoin, ParallelAndHybridStreamsAreIdentical) {
  const auto pa = data::GenerateUniform(600, Rect<2>({0, 0}, {100, 100}), 51);
  const auto pb = data::GenerateUniform(600, Rect<2>({0, 0}, {100, 100}), 52);
  RTree<2> tree1 = test::BuildPointTree(pa);
  RTree<2> tree2 = test::BuildPointTree(pb);

  WithinJoinOptions serial;
  serial.epsilon = 4.0;
  IncWithinJoin<2> reference(tree1, tree2, serial);
  const auto expected = Drain(&reference);
  const JoinStats expected_stats = reference.stats();
  ASSERT_GT(expected.size(), 0u);

  for (const bool hybrid : {false, true}) {
    for (const int threads : {1, 4}) {
      WithinJoinOptions options = serial;
      options.use_hybrid_queue = hybrid;
      options.num_threads = threads;
      IncWithinJoin<2> join(tree1, tree2, options);
      ExpectSameStream(expected, Drain(&join));
      const JoinStats& stats = join.stats();
      EXPECT_EQ(stats.pairs_reported, expected_stats.pairs_reported);
      EXPECT_EQ(stats.queue_pushes, expected_stats.queue_pushes);
      EXPECT_EQ(stats.total_distance_calcs,
                expected_stats.total_distance_calcs);
      EXPECT_EQ(stats.nodes_expanded, expected_stats.nodes_expanded);
    }
  }
}

TEST(IncWithinJoin, SuspendResumeAndSnapshotMatchUninterruptedRun) {
  const auto pa = data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 61);
  const auto pb = data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 62);
  RTree<2> tree1 = test::BuildPointTree(pa);
  RTree<2> tree2 = test::BuildPointTree(pb);

  WithinJoinOptions options;
  options.epsilon = 5.0;
  IncWithinJoin<2> reference(tree1, tree2, options);
  const auto expected = Drain(&reference);
  ASSERT_GT(expected.size(), 40u);

  // Cooperative suspension at a safe point, then resume.
  util::StopSource source;
  WithinJoinOptions stoppable = options;
  stoppable.stop_token = source.token();
  IncWithinJoin<2> join(tree1, tree2, stoppable);
  auto first = Drain(&join, 20);
  source.RequestStop();
  JoinResult<2> pair;
  EXPECT_FALSE(join.Next(&pair));
  EXPECT_EQ(join.status(), JoinStatus::kSuspended);

  // Snapshot the suspended engine and restore into a fresh one.
  snapshot::Blob blob;
  ASSERT_TRUE(join.SaveState(&blob));
  IncWithinJoin<2> resumed(tree1, tree2, options);
  snapshot::BlobReader reader(blob.data(), blob.size());
  ASSERT_TRUE(resumed.RestoreState(&reader));
  resumed.ResumeSuspended();
  auto rest = Drain(&resumed);

  first.insert(first.end(), rest.begin(), rest.end());
  ExpectSameStream(expected, first);
  EXPECT_EQ(resumed.status(), JoinStatus::kExhausted);
  const JoinStats& stats = resumed.stats();
  const JoinStats& ref_stats = reference.stats();
  EXPECT_EQ(stats.pairs_reported, ref_stats.pairs_reported);
  EXPECT_EQ(stats.queue_pushes, ref_stats.queue_pushes);
  EXPECT_EQ(stats.queue_pops, ref_stats.queue_pops);
  EXPECT_EQ(stats.total_distance_calcs, ref_stats.total_distance_calcs);
}

TEST(IncWithinJoin, RestoreRejectsMismatchedFingerprint) {
  const auto pa = data::GenerateUniform(100, Rect<2>({0, 0}, {100, 100}), 71);
  const auto pb = data::GenerateUniform(100, Rect<2>({0, 0}, {100, 100}), 72);
  RTree<2> tree1 = test::BuildPointTree(pa);
  RTree<2> tree2 = test::BuildPointTree(pb);

  WithinJoinOptions options;
  options.epsilon = 2.0;
  IncWithinJoin<2> join(tree1, tree2, options);
  snapshot::Blob blob;
  ASSERT_TRUE(join.SaveState(&blob));

  WithinJoinOptions other = options;
  other.epsilon = 3.0;  // different query → fingerprint mismatch
  IncWithinJoin<2> mismatched(tree1, tree2, other);
  snapshot::BlobReader reader(blob.data(), blob.size());
  EXPECT_FALSE(mismatched.RestoreState(&reader));
}

TEST(IncWithinJoin, EmptyTreeYieldsNothing) {
  RTree<2> empty = test::BuildPointTree({});
  const auto pb = data::GenerateUniform(50, Rect<2>({0, 0}, {100, 100}), 81);
  RTree<2> tree2 = test::BuildPointTree(pb);
  WithinJoinOptions options;
  options.epsilon = 10.0;
  IncWithinJoin<2> join(empty, tree2, options);
  JoinResult<2> pair;
  EXPECT_FALSE(join.Next(&pair));
  EXPECT_EQ(join.status(), JoinStatus::kExhausted);
}

}  // namespace
}  // namespace sdj
