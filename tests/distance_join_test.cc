#include "core/distance_join.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "join_test_util.h"
#include "rtree/rtree.h"

namespace sdj {
namespace {

using test::BruteForcePairs;
using test::BuildPointTree;
using test::RefPair;

std::vector<Point<2>> SampleA(size_t n = 300, uint64_t seed = 51) {
  data::ClusterOptions options;
  options.num_points = n;
  options.extent = Rect<2>({0, 0}, {1000, 1000});
  options.num_clusters = 6;
  options.spread_fraction = 0.05;
  options.seed = seed;
  return data::GenerateClustered(options);
}

std::vector<Point<2>> SampleB(size_t n = 400, uint64_t seed = 52) {
  return data::GenerateUniform(n, Rect<2>({100, 100}, {900, 900}), seed);
}

// Drains up to `limit` pairs from the join.
std::vector<JoinResult<2>> Drain(DistanceJoin<2>& join, size_t limit) {
  std::vector<JoinResult<2>> out;
  JoinResult<2> pair;
  while (out.size() < limit && join.Next(&pair)) out.push_back(pair);
  return out;
}

struct PolicyParam {
  NodeProcessingPolicy node_policy;
  TieBreakPolicy tie_break;
};

class JoinPolicySweep : public ::testing::TestWithParam<PolicyParam> {};

INSTANTIATE_TEST_SUITE_P(
    Policies, JoinPolicySweep,
    ::testing::Values(
        PolicyParam{NodeProcessingPolicy::kEven, TieBreakPolicy::kDepthFirst},
        PolicyParam{NodeProcessingPolicy::kEven,
                    TieBreakPolicy::kBreadthFirst},
        PolicyParam{NodeProcessingPolicy::kBasic, TieBreakPolicy::kDepthFirst},
        PolicyParam{NodeProcessingPolicy::kSimultaneous,
                    TieBreakPolicy::kDepthFirst},
        PolicyParam{NodeProcessingPolicy::kDeferredLeaf,
                    TieBreakPolicy::kDepthFirst}),
    [](const auto& info) {
      std::string name;
      switch (info.param.node_policy) {
        case NodeProcessingPolicy::kBasic: name = "Basic"; break;
        case NodeProcessingPolicy::kEven: name = "Even"; break;
        case NodeProcessingPolicy::kSimultaneous: name = "Simultaneous"; break;
        case NodeProcessingPolicy::kDeferredLeaf: name = "DeferredLeaf"; break;
      }
      name += info.param.tie_break == TieBreakPolicy::kDepthFirst
                  ? "DepthFirst"
                  : "BreadthFirst";
      return name;
    });

TEST_P(JoinPolicySweep, MatchesBruteForcePrefix) {
  const auto a = SampleA();
  const auto b = SampleB();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);

  DistanceJoinOptions options;
  options.node_policy = GetParam().node_policy;
  options.tie_break = GetParam().tie_break;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, 500);
  ASSERT_EQ(got.size(), 500u);
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance, reference[k].distance, 1e-9) << "k=" << k;
    // The reported distance must be the true distance of the reported pair.
    ASSERT_NEAR(got[k].distance, Dist(a[got[k].id1], b[got[k].id2]), 1e-9);
    if (k > 0) {
      ASSERT_GE(got[k].distance, got[k - 1].distance - 1e-12);
    }
  }
}

TEST_P(JoinPolicySweep, FullEnumerationIsExactCartesianProduct) {
  const auto a = SampleA(40, 3);
  const auto b = SampleB(50, 4);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  DistanceJoinOptions options;
  options.node_policy = GetParam().node_policy;
  options.tie_break = GetParam().tie_break;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, 40 * 50 + 10);
  ASSERT_EQ(got.size(), 40u * 50u);
  std::set<std::pair<ObjectId, ObjectId>> seen;
  for (const auto& r : got) {
    EXPECT_TRUE(seen.insert({r.id1, r.id2}).second)
        << "duplicate " << r.id1 << "," << r.id2;
  }
}

TEST(DistanceJoin, EmptyTreesYieldNothing) {
  RTree<2> empty1;
  RTree<2> empty2;
  RTree<2> nonempty = BuildPointTree(SampleA(10, 7));
  DistanceJoinOptions options;
  {
    DistanceJoin<2> join(empty1, empty2, options);
    JoinResult<2> r;
    EXPECT_FALSE(join.Next(&r));
  }
  {
    DistanceJoin<2> join(empty1, nonempty, options);
    JoinResult<2> r;
    EXPECT_FALSE(join.Next(&r));
  }
  {
    DistanceJoin<2> join(nonempty, empty2, options);
    JoinResult<2> r;
    EXPECT_FALSE(join.Next(&r));
  }
}

TEST(DistanceJoin, SelfJoinReportsZeroDistanceFirst) {
  const auto a = SampleA(60, 9);
  RTree<2> t1 = BuildPointTree(a);
  RTree<2> t2 = BuildPointTree(a);
  DistanceJoinOptions options;
  DistanceJoin<2> join(t1, t2, options);
  // The first |a| pairs are the identity pairs at distance 0 (assuming
  // distinct points).
  const auto got = Drain(join, a.size());
  for (const auto& r : got) {
    ASSERT_DOUBLE_EQ(r.distance, 0.0);
  }
}

TEST(DistanceJoin, RespectsMaxDistance) {
  const auto a = SampleA();
  const auto b = SampleB();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const double dmax = reference[2000].distance;

  DistanceJoinOptions options;
  options.max_distance = dmax;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, a.size() * b.size());
  size_t expected = 0;
  while (expected < reference.size() && reference[expected].distance <= dmax) {
    ++expected;
  }
  EXPECT_EQ(got.size(), expected);
  for (const auto& r : got) EXPECT_LE(r.distance, dmax);
  // Pruning must have been useful: far fewer queue pushes than the
  // unbounded join.
  DistanceJoin<2> unbounded(ta, tb, DistanceJoinOptions{});
  Drain(unbounded, expected);
  EXPECT_LT(join.stats().queue_pushes, unbounded.stats().queue_pushes);
}

TEST(DistanceJoin, RespectsMinDistance) {
  const auto a = SampleA(150, 11);
  const auto b = SampleB(150, 12);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const double dmin = reference[reference.size() / 2].distance;

  DistanceJoinOptions options;
  options.min_distance = dmin;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, reference.size());
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance >= dmin) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
  for (const auto& r : got) EXPECT_GE(r.distance, dmin);
  // The first result is the smallest distance >= dmin.
  auto first_ge = std::lower_bound(
      reference.begin(), reference.end(), dmin,
      [](const RefPair& p, double v) { return p.distance < v; });
  ASSERT_NE(first_ge, reference.end());
  EXPECT_NEAR(got.front().distance, first_ge->distance, 1e-9);
}

TEST(DistanceJoin, DistanceRangeWindow) {
  const auto a = SampleA(120, 13);
  const auto b = SampleB(120, 14);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const double lo = reference[1000].distance;
  const double hi = reference[5000].distance;

  DistanceJoinOptions options;
  options.min_distance = lo;
  options.max_distance = hi;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, reference.size());
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance >= lo && p.distance <= hi) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
}

TEST(DistanceJoin, MaxPairsStopsExactly) {
  RTree<2> ta = BuildPointTree(SampleA(100, 15));
  RTree<2> tb = BuildPointTree(SampleB(100, 16));
  DistanceJoinOptions options;
  options.max_pairs = 37;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, 1000);
  EXPECT_EQ(got.size(), 37u);
  JoinResult<2> extra;
  EXPECT_FALSE(join.Next(&extra));
}

TEST(DistanceJoin, MaxDistanceEstimationPreservesResults) {
  const auto a = SampleA();
  const auto b = SampleB();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);

  for (uint64_t k : {1u, 10u, 100u, 1000u}) {
    DistanceJoinOptions options;
    options.max_pairs = k;
    options.estimate_max_distance = true;
    DistanceJoin<2> join(ta, tb, options);
    const auto got = Drain(join, k + 5);
    ASSERT_EQ(got.size(), k) << "k=" << k;
    for (size_t i = 0; i < k; ++i) {
      ASSERT_NEAR(got[i].distance, reference[i].distance, 1e-9)
          << "k=" << k << " i=" << i;
    }
    EXPECT_EQ(join.stats().restarts, 0u);
  }
}

TEST(DistanceJoin, EstimationReducesQueueGrowth) {
  const auto a = SampleA(500, 61);
  const auto b = SampleB(800, 62);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  DistanceJoinOptions plain;
  plain.max_pairs = 50;
  DistanceJoin<2> join_plain(ta, tb, plain);
  Drain(join_plain, 50);

  DistanceJoinOptions est = plain;
  est.estimate_max_distance = true;
  DistanceJoin<2> join_est(ta, tb, est);
  Drain(join_est, 50);

  EXPECT_LT(join_est.stats().queue_pushes, join_plain.stats().queue_pushes);
  EXPECT_LT(join_est.stats().max_queue_size,
            join_plain.stats().max_queue_size);
}

TEST(DistanceJoin, AggressiveEstimationCorrectEvenWithRestarts) {
  const auto a = SampleA(200, 63);
  const auto b = SampleB(300, 64);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);

  for (uint64_t k : {5u, 50u, 500u}) {
    DistanceJoinOptions options;
    options.max_pairs = k;
    options.estimate_max_distance = true;
    options.aggressive_estimation = true;
    DistanceJoin<2> join(ta, tb, options);
    const auto got = Drain(join, k + 5);
    ASSERT_EQ(got.size(), k);
    for (size_t i = 0; i < k; ++i) {
      ASSERT_NEAR(got[i].distance, reference[i].distance, 1e-9)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(DistanceJoin, ReverseOrderReportsFarthestFirst) {
  const auto a = SampleA(80, 17);
  const auto b = SampleB(90, 18);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  auto reference = BruteForcePairs(a, b);

  DistanceJoinOptions options;
  options.reverse_order = true;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, 200);
  ASSERT_EQ(got.size(), 200u);
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance,
                reference[reference.size() - 1 - k].distance, 1e-9)
        << k;
    if (k > 0) {
      ASSERT_LE(got[k].distance, got[k - 1].distance + 1e-12);
    }
  }
}

TEST(DistanceJoin, ReverseOrderFullEnumeration) {
  const auto a = SampleA(25, 19);
  const auto b = SampleB(30, 20);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  options.reverse_order = true;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, 25 * 30 + 5);
  EXPECT_EQ(got.size(), 25u * 30u);
}

TEST(DistanceJoin, ReverseOrderWithMinDistance) {
  const auto a = SampleA(60, 21);
  const auto b = SampleB(60, 22);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);
  const double dmin = reference[reference.size() / 2].distance;
  DistanceJoinOptions options;
  options.reverse_order = true;
  options.min_distance = dmin;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, reference.size());
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance >= dmin) ++expected;
  }
  EXPECT_EQ(got.size(), expected);
  for (const auto& r : got) EXPECT_GE(r.distance, dmin - 1e-12);
}

class MetricJoinSweep : public ::testing::TestWithParam<Metric> {};
INSTANTIATE_TEST_SUITE_P(Metrics, MetricJoinSweep,
                         ::testing::Values(Metric::kEuclidean,
                                           Metric::kManhattan,
                                           Metric::kChessboard),
                         [](const auto& info) {
                           switch (info.param) {
                             case Metric::kEuclidean: return "Euclidean";
                             case Metric::kManhattan: return "Manhattan";
                             case Metric::kChessboard: return "Chessboard";
                           }
                           return "Unknown";
                         });

TEST_P(MetricJoinSweep, PrefixMatchesBruteForce) {
  const auto a = SampleA(120, 23);
  const auto b = SampleB(130, 24);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b, GetParam());
  DistanceJoinOptions options;
  options.metric = GetParam();
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, 300);
  ASSERT_EQ(got.size(), 300u);
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance, reference[k].distance, 1e-9) << k;
  }
}

TEST(DistanceJoin, TieHeavyGridData) {
  // Regular grids produce massive distance ties; the join must still report
  // every pair exactly once in non-decreasing order.
  const auto a = data::GenerateGrid(8, 8, Rect<2>({0, 0}, {7, 7}));
  const auto b = data::GenerateGrid(8, 8, Rect<2>({0.5, 0.5}, {7.5, 7.5}));
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, a.size() * b.size() + 10);
  ASSERT_EQ(got.size(), a.size() * b.size());
  std::set<std::pair<ObjectId, ObjectId>> seen;
  double last = 0.0;
  for (const auto& r : got) {
    EXPECT_TRUE(seen.insert({r.id1, r.id2}).second);
    EXPECT_GE(r.distance, last - 1e-12);
    last = r.distance;
  }
}

TEST(DistanceJoin, ObrModeMatchesDirectStorage) {
  // Object-bounding-rectangle mode: the tree stores MBRs and the exact
  // distance comes from a callback (Figure 3, lines 7-14).
  const auto a = SampleA(150, 25);
  const auto b = SampleB(150, 26);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const auto reference = BruteForcePairs(a, b);

  DistanceJoinOptions options;
  options.exact_object_distance = [&a, &b](ObjectId i, ObjectId j) {
    return Dist(a[i], b[j]);
  };
  DistanceJoin<2> join(ta, tb, options);
  const auto got = Drain(join, 400);
  ASSERT_EQ(got.size(), 400u);
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance, reference[k].distance, 1e-9) << k;
  }
  EXPECT_GT(join.stats().object_distance_calcs, 0u);
}

TEST(DistanceJoin, HybridQueueMatchesMemoryQueue) {
  const auto a = SampleA(250, 27);
  const auto b = SampleB(350, 28);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  DistanceJoinOptions memory_options;
  DistanceJoin<2> memory_join(ta, tb, memory_options);
  const auto expected = Drain(memory_join, 2000);

  DistanceJoinOptions hybrid_options;
  hybrid_options.use_hybrid_queue = true;
  hybrid_options.hybrid.tier_width = 5.0;  // small => heavy tier traffic
  DistanceJoin<2> hybrid_join(ta, tb, hybrid_options);
  const auto got = Drain(hybrid_join, 2000);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(got[k].distance, expected[k].distance, 1e-9) << k;
  }
  // The hybrid queue must actually have kept part of the queue out of
  // memory.
  EXPECT_LT(hybrid_join.max_memory_queue_size(),
            hybrid_join.stats().max_queue_size);
}

TEST(DistanceJoin, FirstPairIsCheap) {
  // "Fast first": retrieving one pair costs a small fraction of a long run
  // (Table 1's shape: node-pair expansions grow with the result count).
  const auto a = SampleA(2000, 29);
  const auto b = SampleB(3000, 30);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  DistanceJoinOptions options;
  DistanceJoin<2> first(ta, tb, options);
  JoinResult<2> r;
  ASSERT_TRUE(first.Next(&r));
  DistanceJoin<2> many(ta, tb, options);
  Drain(many, 100000);
  EXPECT_LT(first.stats().nodes_expanded, many.stats().nodes_expanded / 2);
  EXPECT_LT(first.stats().queue_pushes, many.stats().queue_pushes / 2);
}

TEST(DistanceJoin, StatsAreConsistent) {
  RTree<2> ta = BuildPointTree(SampleA(200, 31));
  RTree<2> tb = BuildPointTree(SampleB(200, 32));
  DistanceJoinOptions options;
  DistanceJoin<2> join(ta, tb, options);
  Drain(join, 500);
  const JoinStats& s = join.stats();
  EXPECT_EQ(s.pairs_reported, 500u);
  EXPECT_GT(s.object_distance_calcs, 0u);
  EXPECT_GE(s.total_distance_calcs, s.object_distance_calcs);
  EXPECT_GT(s.max_queue_size, 0u);
  EXPECT_GE(s.queue_pushes, s.queue_pops);
  EXPECT_GT(s.node_accesses, 0u);
}

TEST(DistanceJoin, InsertBuiltTreeGivesSameResults) {
  // The join must not depend on how the R-tree was constructed.
  const auto a = SampleA(120, 33);
  const auto b = SampleB(120, 34);
  RTree<2> bulk_a = BuildPointTree(a, 512, /*bulk=*/true);
  RTree<2> ins_a = BuildPointTree(a, 512, /*bulk=*/false);
  RTree<2> bulk_b = BuildPointTree(b, 512, /*bulk=*/true);
  RTree<2> ins_b = BuildPointTree(b, 512, /*bulk=*/false);

  DistanceJoinOptions options;
  DistanceJoin<2> join1(bulk_a, bulk_b, options);
  DistanceJoin<2> join2(ins_a, ins_b, options);
  const auto r1 = Drain(join1, 300);
  const auto r2 = Drain(join2, 300);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t k = 0; k < r1.size(); ++k) {
    ASSERT_NEAR(r1[k].distance, r2[k].distance, 1e-9) << k;
  }
}

}  // namespace
}  // namespace sdj
