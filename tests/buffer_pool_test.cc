#include "storage/buffer_pool.h"

#include <cstring>

#include <gtest/gtest.h>

#include "storage/page_file.h"

namespace sdj::storage {
namespace {

BufferPool MakePool(uint32_t capacity, uint32_t page_size = 64) {
  return BufferPool(NewMemoryPageFile(page_size), capacity);
}

TEST(BufferPool, NewPageIsZeroedAndPinned) {
  BufferPool pool = MakePool(4);
  PageId id;
  char* data = pool.NewPage(&id);
  ASSERT_NE(data, nullptr);
  for (uint32_t i = 0; i < pool.page_size(); ++i) EXPECT_EQ(data[i], 0);
  pool.Unpin(id, false);
}

TEST(BufferPool, PinnedDataPersistsAcrossUnpinRepin) {
  BufferPool pool = MakePool(4);
  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x5A, pool.page_size());
  pool.Unpin(id, true);
  char* again = pool.Pin(id);
  for (uint32_t i = 0; i < pool.page_size(); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(again[i]), 0x5A);
  }
  pool.Unpin(id, false);
}

TEST(BufferPool, DirtyPageSurvivesEviction) {
  BufferPool pool = MakePool(2);
  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x77, pool.page_size());
  pool.Unpin(id, true);
  // Thrash the pool with enough other pages to force eviction of `id`.
  for (int i = 0; i < 4; ++i) {
    PageId other;
    pool.NewPage(&other);
    pool.Unpin(other, false);
  }
  char* again = pool.Pin(id);
  for (uint32_t i = 0; i < pool.page_size(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(again[i]), 0x77);
  }
  pool.Unpin(id, false);
}

TEST(BufferPool, HitAndMissAccounting) {
  BufferPool pool = MakePool(2);
  PageId a, b, c;
  pool.NewPage(&a);
  pool.Unpin(a, false);
  pool.NewPage(&b);
  pool.Unpin(b, false);
  pool.NewPage(&c);  // evicts a (LRU)
  pool.Unpin(c, false);
  pool.ResetStats();

  pool.Pin(b);  // hit
  pool.Unpin(b, false);
  pool.Pin(a);  // miss (was evicted)
  pool.Unpin(a, false);
  const IoStats& s = pool.stats();
  EXPECT_EQ(s.logical_reads, 2u);
  EXPECT_EQ(s.buffer_hits, 1u);
  EXPECT_EQ(s.buffer_misses, 1u);
  EXPECT_EQ(s.physical_reads, 1u);
}

TEST(BufferPool, LruEvictsLeastRecentlyUsed) {
  BufferPool pool = MakePool(2);
  PageId a, b;
  pool.NewPage(&a);
  pool.Unpin(a, false);
  pool.NewPage(&b);
  pool.Unpin(b, false);
  // Touch `a` so that `b` becomes LRU.
  pool.Pin(a);
  pool.Unpin(a, false);
  PageId c;
  pool.NewPage(&c);  // must evict b, not a
  pool.Unpin(c, false);
  pool.ResetStats();
  pool.Pin(a);
  pool.Unpin(a, false);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);  // a still resident
  pool.Pin(b);
  pool.Unpin(b, false);
  EXPECT_EQ(pool.stats().buffer_misses, 1u);  // b was evicted
}

TEST(BufferPool, PinNestingKeepsPageResident) {
  BufferPool pool = MakePool(2);
  PageId a;
  pool.NewPage(&a);  // pin 1
  pool.Pin(a);       // pin 2
  pool.Unpin(a, false);
  // Still pinned once: allocating new pages must not evict it.
  PageId b;
  pool.NewPage(&b);
  pool.Unpin(b, false);
  pool.ResetStats();
  pool.Pin(a);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);
  pool.Unpin(a, false);
  pool.Unpin(a, false);
}

TEST(BufferPool, FlushAllWritesDirtyPages) {
  auto file = NewMemoryPageFile(64);
  PageFile* raw = file.get();
  BufferPool pool(std::move(file), 4);
  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x42, 64);
  pool.Unpin(id, true);
  pool.FlushAll();
  char buffer[64];
  ASSERT_EQ(raw->Read(id, buffer), IoStatus::kOk);
  for (char ch : buffer) EXPECT_EQ(static_cast<unsigned char>(ch), 0x42);
}

TEST(BufferPool, InvalidateDropsCleanPagesAndFlushesDirty) {
  BufferPool pool = MakePool(4);
  PageId a;
  char* data = pool.NewPage(&a);
  std::memset(data, 0x11, pool.page_size());
  pool.Unpin(a, true);
  pool.Invalidate();
  pool.ResetStats();
  char* again = pool.Pin(a);
  EXPECT_EQ(pool.stats().buffer_misses, 1u);  // cold after invalidate
  for (uint32_t i = 0; i < pool.page_size(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(again[i]), 0x11);
  }
  pool.Unpin(a, false);
}

TEST(BufferPool, ManyPagesThrashCorrectly) {
  BufferPool pool = MakePool(8, 32);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    PageId id;
    char* data = pool.NewPage(&id);
    EXPECT_EQ(id, static_cast<PageId>(i));
    std::memset(data, i & 0xFF, 32);
    pool.Unpin(id, true);
  }
  // Verify all pages, far exceeding the pool capacity.
  for (int i = 0; i < n; ++i) {
    char* data = pool.Pin(static_cast<PageId>(i));
    for (int j = 0; j < 32; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(data[j]), i & 0xFF) << i;
    }
    pool.Unpin(static_cast<PageId>(i), false);
  }
}

}  // namespace
}  // namespace sdj::storage
