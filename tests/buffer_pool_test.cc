#include "storage/buffer_pool.h"

#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/page_file.h"

namespace sdj::storage {
namespace {

BufferPool MakePool(uint32_t capacity, uint32_t page_size = 64) {
  return BufferPool(NewMemoryPageFile(page_size), capacity);
}

TEST(BufferPool, NewPageIsZeroedAndPinned) {
  BufferPool pool = MakePool(4);
  PageId id;
  char* data = pool.NewPage(&id);
  ASSERT_NE(data, nullptr);
  for (uint32_t i = 0; i < pool.page_size(); ++i) EXPECT_EQ(data[i], 0);
  pool.Unpin(id, false);
}

TEST(BufferPool, PinnedDataPersistsAcrossUnpinRepin) {
  BufferPool pool = MakePool(4);
  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x5A, pool.page_size());
  pool.Unpin(id, true);
  char* again = pool.Pin(id);
  for (uint32_t i = 0; i < pool.page_size(); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(again[i]), 0x5A);
  }
  pool.Unpin(id, false);
}

TEST(BufferPool, DirtyPageSurvivesEviction) {
  BufferPool pool = MakePool(2);
  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x77, pool.page_size());
  pool.Unpin(id, true);
  // Thrash the pool with enough other pages to force eviction of `id`.
  for (int i = 0; i < 4; ++i) {
    PageId other;
    pool.NewPage(&other);
    pool.Unpin(other, false);
  }
  char* again = pool.Pin(id);
  for (uint32_t i = 0; i < pool.page_size(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(again[i]), 0x77);
  }
  pool.Unpin(id, false);
}

TEST(BufferPool, HitAndMissAccounting) {
  BufferPool pool = MakePool(2);
  PageId a, b, c;
  pool.NewPage(&a);
  pool.Unpin(a, false);
  pool.NewPage(&b);
  pool.Unpin(b, false);
  pool.NewPage(&c);  // evicts a (LRU)
  pool.Unpin(c, false);
  pool.ResetStats();

  pool.Pin(b);  // hit
  pool.Unpin(b, false);
  pool.Pin(a);  // miss (was evicted)
  pool.Unpin(a, false);
  const IoStats& s = pool.stats();
  EXPECT_EQ(s.logical_reads, 2u);
  EXPECT_EQ(s.buffer_hits, 1u);
  EXPECT_EQ(s.buffer_misses, 1u);
  EXPECT_EQ(s.physical_reads, 1u);
}

TEST(BufferPool, LruEvictsLeastRecentlyUsed) {
  BufferPool pool = MakePool(2);
  PageId a, b;
  pool.NewPage(&a);
  pool.Unpin(a, false);
  pool.NewPage(&b);
  pool.Unpin(b, false);
  // Touch `a` so that `b` becomes LRU.
  pool.Pin(a);
  pool.Unpin(a, false);
  PageId c;
  pool.NewPage(&c);  // must evict b, not a
  pool.Unpin(c, false);
  pool.ResetStats();
  pool.Pin(a);
  pool.Unpin(a, false);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);  // a still resident
  pool.Pin(b);
  pool.Unpin(b, false);
  EXPECT_EQ(pool.stats().buffer_misses, 1u);  // b was evicted
}

TEST(BufferPool, PinNestingKeepsPageResident) {
  BufferPool pool = MakePool(2);
  PageId a;
  pool.NewPage(&a);  // pin 1
  pool.Pin(a);       // pin 2
  pool.Unpin(a, false);
  // Still pinned once: allocating new pages must not evict it.
  PageId b;
  pool.NewPage(&b);
  pool.Unpin(b, false);
  pool.ResetStats();
  pool.Pin(a);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);
  pool.Unpin(a, false);
  pool.Unpin(a, false);
}

TEST(BufferPool, FlushAllWritesDirtyPages) {
  auto file = NewMemoryPageFile(64);
  PageFile* raw = file.get();
  BufferPool pool(std::move(file), 4);
  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x42, 64);
  pool.Unpin(id, true);
  pool.FlushAll();
  char buffer[64];
  ASSERT_EQ(raw->Read(id, buffer), IoStatus::kOk);
  for (char ch : buffer) EXPECT_EQ(static_cast<unsigned char>(ch), 0x42);
}

TEST(BufferPool, InvalidateDropsCleanPagesAndFlushesDirty) {
  BufferPool pool = MakePool(4);
  PageId a;
  char* data = pool.NewPage(&a);
  std::memset(data, 0x11, pool.page_size());
  pool.Unpin(a, true);
  pool.Invalidate();
  pool.ResetStats();
  char* again = pool.Pin(a);
  EXPECT_EQ(pool.stats().buffer_misses, 1u);  // cold after invalidate
  for (uint32_t i = 0; i < pool.page_size(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(again[i]), 0x11);
  }
  pool.Unpin(a, false);
}

TEST(BufferPool, ManyPagesThrashCorrectly) {
  BufferPool pool = MakePool(8, 32);
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    PageId id;
    char* data = pool.NewPage(&id);
    EXPECT_EQ(id, static_cast<PageId>(i));
    std::memset(data, i & 0xFF, 32);
    pool.Unpin(id, true);
  }
  // Verify all pages, far exceeding the pool capacity.
  for (int i = 0; i < n; ++i) {
    char* data = pool.Pin(static_cast<PageId>(i));
    for (int j = 0; j < 32; ++j) {
      ASSERT_EQ(static_cast<unsigned char>(data[j]), i & 0xFF) << i;
    }
    pool.Unpin(static_cast<PageId>(i), false);
  }
}

// ---- concurrency (lock-striped page table) ----
//
// These tests are the TSan surface for the pool: run under the tsan preset
// (scripts/check.sh) they prove the striping has no data races; run normally
// they prove the concurrent bookkeeping stays exact.

TEST(BufferPoolConcurrency, ConcurrentPinsOfDisjointPagesStayExact) {
  // Capacity exceeds the working set, so after the warm-up every TryPin is a
  // hit and the hit/miss split is exactly predictable even under threads.
  const int kPages = 64;
  const int kThreads = 8;
  const int kItersPerThread = 2000;
  BufferPool pool(NewMemoryPageFile(64), kPages);
  std::vector<PageId> ids(kPages);
  for (int i = 0; i < kPages; ++i) {
    char* data = pool.NewPage(&ids[i]);
    std::memset(data, i, pool.page_size());
    pool.Unpin(ids[i], true);
  }
  pool.ResetStats();
  std::vector<std::thread> threads;
  std::atomic<int> corrupt{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kItersPerThread; ++k) {
        const int p = (t * 31 + k * 17) % kPages;
        char* data = pool.Pin(ids[p]);
        if (static_cast<unsigned char>(data[0]) != static_cast<unsigned>(p)) {
          corrupt.fetch_add(1);
        }
        pool.Unpin(ids[p], false);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0);
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.logical_reads,
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(stats.buffer_hits,
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_EQ(stats.buffer_misses, 0u);
}

TEST(BufferPoolConcurrency, ConcurrentThrashingKeepsDataIntact) {
  // Working set far above capacity: threads continuously force evictions and
  // reloads of each other's pages, including dirty write-backs.
  const int kPages = 96;
  const uint32_t kCapacity = 8;
  const int kThreads = 8;
  const int kItersPerThread = 500;
  BufferPool pool(NewMemoryPageFile(64), kCapacity);
  std::vector<PageId> ids(kPages);
  for (int i = 0; i < kPages; ++i) {
    char* data = pool.NewPage(&ids[i]);
    std::memset(data, i, pool.page_size());
    pool.Unpin(ids[i], true);
  }
  std::vector<std::thread> threads;
  std::atomic<int> corrupt{0};
  // The pool's contract makes callers coordinate concurrent mutation of the
  // same page's CONTENTS (join engines are pure readers); one mutex per page
  // provides that, while pin/unpin/evict below it stay fully concurrent.
  std::vector<std::mutex> page_mu(kPages);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kItersPerThread; ++k) {
        const int p = (t * 13 + k * 7) % kPages;
        std::lock_guard<std::mutex> page_lock(page_mu[p]);
        char* data = pool.Pin(ids[p]);
        // Every byte of the page must match what its owner last wrote: a
        // torn eviction or racing reload would surface here.
        bool ok = true;
        for (uint32_t j = 0; j < pool.page_size(); ++j) {
          ok = ok && static_cast<unsigned char>(data[j]) ==
                         static_cast<unsigned char>(p);
        }
        if (!ok) corrupt.fetch_add(1);
        // Rewrite the same contents dirty, exercising write-back.
        std::memset(data, p, pool.page_size());
        pool.Unpin(ids[p], true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(corrupt.load(), 0);
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.logical_reads, stats.buffer_hits + stats.buffer_misses);
  EXPECT_EQ(stats.read_failures, 0u);
  EXPECT_EQ(stats.write_failures, 0u);
  ASSERT_TRUE(pool.FlushAll());
  for (int i = 0; i < kPages; ++i) {
    char* data = pool.Pin(ids[i]);
    for (uint32_t j = 0; j < pool.page_size(); ++j) {
      ASSERT_EQ(static_cast<unsigned char>(data[j]),
                static_cast<unsigned char>(i));
    }
    pool.Unpin(ids[i], false);
  }
}

TEST(BufferPoolConcurrency, SamePageLoadedOnceUnderContention) {
  // Many threads pinning ONE uncached page: the in-progress sentinel must
  // collapse them onto a single physical load (one miss, the rest hits).
  const int kThreads = 8;
  BufferPool pool(NewMemoryPageFile(64), 4);
  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x42, pool.page_size());
  pool.Unpin(id, true);
  ASSERT_TRUE(pool.FlushAll());
  pool.Invalidate();
  pool.ResetStats();
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      char* page = pool.Pin(id);
      if (static_cast<unsigned char>(page[5]) != 0x42) bad.fetch_add(1);
      pool.Unpin(id, false);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  const IoStats stats = pool.stats();
  EXPECT_EQ(stats.logical_reads, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.buffer_misses, 1u);
  EXPECT_EQ(stats.buffer_hits, static_cast<uint64_t>(kThreads) - 1);
  EXPECT_EQ(stats.physical_reads, 1u);
}

}  // namespace
}  // namespace sdj::storage
