// Deterministic crash-point exploration (DESIGN.md §16).
//
// CrashPointPageFile simulates power loss at one exact write/sync operation:
// the op at `crash_at` is torn (partial page, garbage tail, or dropped) and
// the file latches read-only. A schedule enumerator first runs each workload
// uncrashed to learn its mutation-op count N, then replays it once per index
// in [0, N) — covering 100% of the crash points of that workload:
//
//   * SnapshotStore commits  — recovery must land on a committed epoch,
//     never a mangled payload, and the store must keep accepting commits.
//   * SessionTable commits   — a crash inside the table commit drops only
//     the uncommitted delta; the previous session set survives intact.
//   * JoinCursor checkpoints — the resumed join's pair stream and statistics
//     are identical to an uninterrupted run.
//   * Hybrid-queue spills    — sampled (SDJ_CRASH_SPILL_STRIDE=1 for the
//     full sweep): no abort, no silently wrong stream — either the exact
//     pair stream or an explicit io_error(), with the page-accounting
//     invariant (allocated == live + free + abandoned) intact either way.
//   * R-tree builds          — construction uses the aborting pin path, so
//     the build dies (death test); the torn file scrubs cleanly
//     (storage/scrub.h) and a from-scratch rebuild succeeds.
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/hybrid_queue.h"
#include "core/join_cursor.h"
#include "core/pair_entry.h"
#include "core/snapshot.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "rtree/rtree.h"
#include "serve/session_table.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"
#include "storage/scrub.h"
#include "util/rng.h"

namespace sdj {
namespace {

using storage::CrashPointOptions;
using storage::CrashPointPageFile;
using storage::CrashTearMode;
using storage::IoStatus;
using test::BuildPointTree;

constexpr CrashTearMode kAllTearModes[] = {CrashTearMode::kPartialPage,
                                           CrashTearMode::kGarbageTail,
                                           CrashTearMode::kDroppedOp};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// CrashPointPageFile unit tests
// ---------------------------------------------------------------------------

constexpr uint32_t kUnitPageSize = 64;

std::unique_ptr<CrashPointPageFile> MakeUnitFile(
    const CrashPointOptions& options) {
  return storage::NewCrashPointPageFile(
      storage::NewMemoryPageFile(kUnitPageSize), options);
}

TEST(CrashPointPageFile, CountsOpsAndPassesThroughUncrashed) {
  auto file = MakeUnitFile({});  // crash_at = kNever
  EXPECT_EQ(file->Allocate(), 0u);
  EXPECT_EQ(file->Allocate(), 1u);
  EXPECT_EQ(file->mutation_ops(), 0u);  // allocations are not mutation ops
  std::vector<char> page(kUnitPageSize, 'x');
  EXPECT_EQ(file->Write(0, page.data()), IoStatus::kOk);
  EXPECT_EQ(file->Write(1, page.data()), IoStatus::kOk);
  EXPECT_EQ(file->Sync(), IoStatus::kOk);
  EXPECT_EQ(file->Write(0, page.data()), IoStatus::kOk);
  EXPECT_EQ(file->Sync(), IoStatus::kOk);
  EXPECT_EQ(file->mutation_ops(), 5u);
  EXPECT_FALSE(file->crashed());
  std::vector<char> back(kUnitPageSize);
  EXPECT_EQ(file->Read(1, back.data()), IoStatus::kOk);
  EXPECT_EQ(back, page);
}

TEST(CrashPointPageFile, PartialPageTearKeepsPreviousTailAndLatches) {
  CrashPointOptions options;
  options.crash_at = 2;  // ops 0,1 = initial write + sync; op 2 crashes
  options.tear = CrashTearMode::kPartialPage;
  auto file = MakeUnitFile(options);
  file->Allocate();
  std::vector<char> old_page(kUnitPageSize, 'A');
  ASSERT_EQ(file->Write(0, old_page.data()), IoStatus::kOk);
  ASSERT_EQ(file->Sync(), IoStatus::kOk);
  std::vector<char> new_page(kUnitPageSize, 'B');
  EXPECT_EQ(file->Write(0, new_page.data()), IoStatus::kFailed);
  EXPECT_TRUE(file->crashed());
  // Media: first half new, tail keeps the previous bytes.
  std::vector<char> back(kUnitPageSize);
  ASSERT_EQ(file->Read(0, back.data()), IoStatus::kOk);
  for (uint32_t i = 0; i < kUnitPageSize / 2; ++i) EXPECT_EQ(back[i], 'B');
  for (uint32_t i = kUnitPageSize / 2; i < kUnitPageSize; ++i) {
    EXPECT_EQ(back[i], 'A');
  }
  // Latched: every further mutation fails, the file cannot grow, reads work.
  EXPECT_EQ(file->Write(0, old_page.data()), IoStatus::kFailed);
  EXPECT_EQ(file->Sync(), IoStatus::kFailed);
  EXPECT_EQ(file->Allocate(), storage::kInvalidPageId);
  EXPECT_EQ(file->Read(0, back.data()), IoStatus::kOk);
}

TEST(CrashPointPageFile, GarbageTailIsSeededAndDeterministic) {
  auto tear_once = [](uint64_t seed) {
    CrashPointOptions options;
    options.crash_at = 0;
    options.tear = CrashTearMode::kGarbageTail;
    options.seed = seed;
    auto file = MakeUnitFile(options);
    file->Allocate();
    std::vector<char> page(kUnitPageSize, 'C');
    EXPECT_EQ(file->Write(0, page.data()), IoStatus::kFailed);
    std::vector<char> back(kUnitPageSize);
    EXPECT_EQ(file->Read(0, back.data()), IoStatus::kOk);
    for (uint32_t i = 0; i < kUnitPageSize / 2; ++i) EXPECT_EQ(back[i], 'C');
    return back;
  };
  const std::vector<char> a = tear_once(7);
  const std::vector<char> b = tear_once(7);
  EXPECT_EQ(a, b);  // same seed, same garbage — the failure replays
  EXPECT_NE(a, tear_once(8));
}

TEST(CrashPointPageFile, DroppedWriteNeverReachesTheMedia) {
  CrashPointOptions options;
  options.crash_at = 2;
  options.tear = CrashTearMode::kDroppedOp;
  auto file = MakeUnitFile(options);
  file->Allocate();
  std::vector<char> old_page(kUnitPageSize, 'A');
  ASSERT_EQ(file->Write(0, old_page.data()), IoStatus::kOk);
  ASSERT_EQ(file->Sync(), IoStatus::kOk);
  std::vector<char> new_page(kUnitPageSize, 'B');
  EXPECT_EQ(file->Write(0, new_page.data()), IoStatus::kFailed);
  std::vector<char> back(kUnitPageSize);
  ASSERT_EQ(file->Read(0, back.data()), IoStatus::kOk);
  EXPECT_EQ(back, old_page);
}

TEST(CrashPointPageFile, CrashingSyncIsAlwaysADroppedOp) {
  for (const CrashTearMode mode : kAllTearModes) {
    CrashPointOptions options;
    options.crash_at = 1;  // op 0 = write, op 1 = the sync
    options.tear = mode;
    auto file = MakeUnitFile(options);
    file->Allocate();
    std::vector<char> page(kUnitPageSize, 'S');
    ASSERT_EQ(file->Write(0, page.data()), IoStatus::kOk);
    EXPECT_EQ(file->Sync(), IoStatus::kFailed);
    EXPECT_TRUE(file->crashed());
    // The preceding write survives regardless of the tear mode: a crashing
    // sync only drops the flush, it never mangles already-written pages.
    std::vector<char> back(kUnitPageSize);
    ASSERT_EQ(file->Read(0, back.data()), IoStatus::kOk);
    EXPECT_EQ(back, page);
  }
}

// ---------------------------------------------------------------------------
// Fault-schedule reproducibility (the replay recipe printed on failure)
// ---------------------------------------------------------------------------

TEST(FaultSchedule, RecordsExactOpIndicesForReplay) {
  storage::FaultInjectionOptions options;
  options.seed = 3;
  options.transient_write_period = 3;  // write ops 2, 5, 8, ... fail
  options.torn_write_at = 7;
  auto file = storage::NewFaultInjectingPageFile(
      storage::NewMemoryPageFile(kUnitPageSize), options);
  file->Allocate();
  std::vector<char> page(kUnitPageSize, 'w');
  for (int i = 0; i < 9; ++i) (void)file->Write(0, page.data());
  EXPECT_EQ(file->ScheduleString(),
            "seed=3 transient_reads=[] transient_writes=[2,5,8] "
            "bit_flips=[] torn_writes=[7]");
}

// ---------------------------------------------------------------------------
// SnapshotStore commit sweep: every write/sync op of a commit is a crash
// point; recovery must land on a committed epoch and stay writable.
// ---------------------------------------------------------------------------

snapshot::Blob MakeBlob(const std::string& s) {
  snapshot::Blob blob;
  blob.PutBytes(s.data(), s.size());
  return blob;
}

TEST(CrashPointSweep, SnapshotCommitEveryOpRecoversToCommittedEpoch) {
  const std::string p1(300, 'a');
  const std::string p2(340, 'b');
  const std::string p3(120, 'c');
  uint64_t covered = 0;
  for (const CrashTearMode mode : kAllTearModes) {
    const std::string path =
        TempPath(std::string("crash_snap_") + CrashTearModeName(mode));
    snapshot::SnapshotStoreOptions options;
    options.path = path;
    options.page_size = 256;

    // Counting pass: the same two commits, uncrashed, to learn the op count.
    std::remove(path.c_str());
    options.crash_point = CrashPointOptions{};  // crash_at = kNever
    uint64_t total_ops = 0;
    {
      auto store = snapshot::SnapshotStore::Open(options);
      ASSERT_NE(store, nullptr);
      ASSERT_TRUE(store->WriteSnapshot(MakeBlob(p1)));
      ASSERT_TRUE(store->WriteSnapshot(MakeBlob(p2)));
      total_ops = store->crash_point()->mutation_ops();
    }
    ASSERT_GT(total_ops, 4u);  // payload + sync + header + sync, twice

    for (uint64_t k = 0; k < total_ops; ++k) {
      SCOPED_TRACE(std::string("tear=") + CrashTearModeName(mode) +
                   " crash_at=" + std::to_string(k));
      std::remove(path.c_str());
      bool first_acked = false;
      {
        options.crash_point = CrashPointOptions{k, mode, /*seed=*/k + 1};
        auto store = snapshot::SnapshotStore::Open(options);
        ASSERT_NE(store, nullptr);
        first_acked = store->WriteSnapshot(MakeBlob(p1));
        if (first_acked) {
          // The crash fires inside the second commit, so it can never ack.
          EXPECT_FALSE(store->WriteSnapshot(MakeBlob(p2)));
        }
        EXPECT_TRUE(store->crash_point()->crashed());
      }
      // Recovery: reopen the surviving image without the crash layer.
      options.crash_point.reset();
      auto store = snapshot::SnapshotStore::Open(options);
      ASSERT_NE(store, nullptr);
      std::string payload;
      uint64_t epoch = 0;
      const bool found = store->ReadLatest(&payload, &epoch);
      // An acknowledged commit is never lost...
      if (first_acked) {
        ASSERT_TRUE(found);
      }
      // ...and whatever is recovered is exactly a committed payload, never a
      // mangled one. (Epoch 2 without an ack is legal: the crash dropped the
      // final sync after the header reached the media.)
      if (found) {
        ASSERT_TRUE(epoch == 1 || epoch == 2) << "epoch=" << epoch;
        EXPECT_EQ(payload, epoch == 1 ? p1 : p2);
      }
      // The recovered store keeps accepting commits.
      const uint64_t before = store->last_epoch();
      ASSERT_TRUE(store->WriteSnapshot(MakeBlob(p3)));
      ASSERT_TRUE(store->ReadLatest(&payload, &epoch));
      EXPECT_EQ(payload, p3);
      EXPECT_EQ(epoch, before + 1);
      ++covered;
    }
  }
  std::printf("[ crash-sweep ] snapshot commits: %llu crash points covered "
              "(all tear modes)\n",
              static_cast<unsigned long long>(covered));
}

// ---------------------------------------------------------------------------
// SessionTable commit sweep: a crash inside the table commit drops only the
// uncommitted delta — the previously committed session set survives.
// ---------------------------------------------------------------------------

std::vector<serve::SessionRecord> TableV1() {
  return {{1, "join:water-roads", false}};
}
std::vector<serve::SessionRecord> TableV2() {
  return {{1, "join:water-roads", true}, {2, "semi:cities", false}};
}

bool SameRecords(const std::vector<serve::SessionRecord>& a,
                 const std::vector<serve::SessionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].tag != b[i].tag ||
        a[i].has_snapshot != b[i].has_snapshot) {
      return false;
    }
  }
  return true;
}

TEST(CrashPointSweep, SessionTableCommitDropsOnlyTheUncommittedDelta) {
  uint64_t covered = 0;
  for (const CrashTearMode mode : kAllTearModes) {
    const std::string path =
        TempPath(std::string("crash_table_") + CrashTearModeName(mode));
    snapshot::SnapshotStoreOptions options;
    options.path = path;
    options.page_size = 256;

    std::remove(path.c_str());
    options.crash_point = CrashPointOptions{};
    uint64_t total_ops = 0;
    {
      auto table = serve::SessionTable::Open(options);
      ASSERT_NE(table, nullptr);
      ASSERT_TRUE(table->Commit(TableV1(), 2));
      ASSERT_TRUE(table->Commit(TableV2(), 3));
      total_ops = table->store()->crash_point()->mutation_ops();
    }
    ASSERT_GT(total_ops, 4u);

    for (uint64_t k = 0; k < total_ops; ++k) {
      SCOPED_TRACE(std::string("tear=") + CrashTearModeName(mode) +
                   " crash_at=" + std::to_string(k));
      std::remove(path.c_str());
      bool first_acked = false;
      {
        options.crash_point = CrashPointOptions{k, mode, /*seed=*/k + 1};
        auto table = serve::SessionTable::Open(options);
        ASSERT_NE(table, nullptr);
        first_acked = table->Commit(TableV1(), 2);
        if (first_acked) {
          EXPECT_FALSE(table->Commit(TableV2(), 3));
        }
      }
      options.crash_point.reset();
      auto table = serve::SessionTable::Open(options);
      ASSERT_NE(table, nullptr);
      std::vector<serve::SessionRecord> records;
      uint64_t next_id = 0;
      const bool loaded = table->Load(&records, &next_id);
      if (first_acked) {
        ASSERT_TRUE(loaded);
      }
      if (loaded) {
        // Exactly one of the two committed sets, with its matching id
        // allocator — never a blend of both.
        if (next_id == 2) {
          EXPECT_TRUE(SameRecords(records, TableV1()));
        } else {
          ASSERT_EQ(next_id, 3u);
          EXPECT_TRUE(SameRecords(records, TableV2()));
        }
      }
      // The recovered table keeps committing.
      const std::vector<serve::SessionRecord> v3 = {{7, "late", true}};
      ASSERT_TRUE(table->Commit(v3, 8));
      ASSERT_TRUE(table->Load(&records, &next_id));
      EXPECT_TRUE(SameRecords(records, v3));
      EXPECT_EQ(next_id, 8u);
      ++covered;
    }
  }
  std::printf("[ crash-sweep ] session-table commits: %llu crash points "
              "covered (all tear modes)\n",
              static_cast<unsigned long long>(covered));
}

// ---------------------------------------------------------------------------
// JoinCursor checkpoint sweep: crash at every op of the checkpointing run,
// then resume — the combined pair stream and the final statistics must be
// identical to an uninterrupted run.
// ---------------------------------------------------------------------------

using Pair = std::tuple<uint64_t, uint64_t, double>;

Pair AsTuple(const JoinResult<2>& r) { return {r.id1, r.id2, r.distance}; }

void ExpectStatsEqual(const JoinStats& a, const JoinStats& b) {
  EXPECT_EQ(a.pairs_reported, b.pairs_reported);
  EXPECT_EQ(a.object_distance_calcs, b.object_distance_calcs);
  EXPECT_EQ(a.total_distance_calcs, b.total_distance_calcs);
  EXPECT_EQ(a.queue_pushes, b.queue_pushes);
  EXPECT_EQ(a.queue_pops, b.queue_pops);
  EXPECT_EQ(a.max_queue_size, b.max_queue_size);
  EXPECT_EQ(a.node_io, b.node_io);
  EXPECT_EQ(a.node_accesses, b.node_accesses);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.pruned_by_range, b.pruned_by_range);
  EXPECT_EQ(a.pruned_by_bound, b.pruned_by_bound);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
  EXPECT_EQ(a.spill_fallbacks, b.spill_fallbacks);
}

std::vector<Point<2>> MakePoints(size_t n, uint64_t seed) {
  const Rect<2> extent({0.0, 0.0}, {1000.0, 1000.0});
  return data::GenerateUniform(n, extent, seed);
}

TEST(CrashPointSweep, CursorCheckpointCrashResumesStreamAndStatsIdentical) {
  const auto pa = MakePoints(28, 101);
  const auto pb = MakePoints(28, 202);
  constexpr uint64_t kPrefix = 36;       // pairs drained before the "crash"
  constexpr uint64_t kEvery = 8;         // checkpoint cadence
  const DistanceJoinOptions join_options;

  // Uninterrupted reference stream and statistics.
  std::vector<Pair> ref;
  JoinStats ref_stats;
  {
    RTree<2> a = BuildPointTree(pa);
    RTree<2> b = BuildPointTree(pb);
    DistanceJoin<2> join(a, b, join_options);
    JoinResult<2> r;
    while (join.Next(&r)) ref.push_back(AsTuple(r));
    ASSERT_EQ(join.status(), JoinStatus::kExhausted);
    ref_stats = join.stats();
  }
  ASSERT_GT(ref.size(), kPrefix);

  const std::string path = TempPath("crash_cursor.snap");
  CursorOptions cursor_options;
  cursor_options.snapshot_path = path;
  cursor_options.page_size = 512;
  cursor_options.checkpoint_every = kEvery;

  // Counting pass.
  std::remove(path.c_str());
  cursor_options.crash_point = CrashPointOptions{};
  uint64_t total_ops = 0;
  {
    RTree<2> a = BuildPointTree(pa);
    RTree<2> b = BuildPointTree(pb);
    DistanceJoin<2> join(a, b, join_options);
    JoinCursor<2, DistanceJoin<2>> cursor(&join, cursor_options);
    JoinResult<2> r;
    for (uint64_t i = 0; i < kPrefix; ++i) ASSERT_TRUE(cursor.Next(&r));
    total_ops = cursor.store()->crash_point()->mutation_ops();
  }
  ASSERT_GT(total_ops, 0u);

  for (uint64_t k = 0; k < total_ops; ++k) {
    const CrashTearMode mode = kAllTearModes[k % 3];
    SCOPED_TRACE(std::string("tear=") + CrashTearModeName(mode) +
                 " crash_at=" + std::to_string(k));
    std::remove(path.c_str());
    uint64_t committed_epoch = 0;
    {
      RTree<2> a = BuildPointTree(pa);
      RTree<2> b = BuildPointTree(pb);
      DistanceJoin<2> join(a, b, join_options);
      cursor_options.crash_point = CrashPointOptions{k, mode, /*seed=*/k + 1};
      JoinCursor<2, DistanceJoin<2>> cursor(&join, cursor_options);
      JoinResult<2> r;
      // Checkpoint commits fail after the crash point; the join itself is
      // unharmed and keeps streaming the exact reference prefix.
      for (uint64_t i = 0; i < kPrefix; ++i) {
        ASSERT_TRUE(cursor.Next(&r));
        ASSERT_EQ(AsTuple(r), ref[i]);
      }
      EXPECT_TRUE(cursor.store()->crash_point()->crashed());
      committed_epoch = cursor.store()->last_epoch();
    }
    // Recovery: a fresh engine resumes from the newest committed epoch (a
    // checkpoint at epoch e covers the first e * kEvery reference pairs).
    RTree<2> a = BuildPointTree(pa);
    RTree<2> b = BuildPointTree(pb);
    DistanceJoin<2> join(a, b, join_options);
    CursorOptions clean = cursor_options;
    clean.crash_point.reset();
    clean.checkpoint_every = 0;
    JoinCursor<2, DistanceJoin<2>> cursor(&join, clean);
    const bool resumed = cursor.ResumeLatest();
    // An acknowledged checkpoint is never lost. (Resume can also land on an
    // epoch whose commit was never acknowledged — the crash dropped the
    // final sync after the header reached the media — so `resumed` may be
    // true even when committed_epoch == 0.)
    if (committed_epoch > 0) {
      ASSERT_TRUE(resumed);
    }
    const uint64_t resumed_epoch = resumed ? cursor.store()->last_epoch() : 0;
    ASSERT_LE(resumed_epoch * kEvery, ref.size());
    std::vector<Pair> stream(ref.begin(),
                             ref.begin() + resumed_epoch * kEvery);
    JoinResult<2> r;
    while (cursor.Next(&r)) stream.push_back(AsTuple(r));
    ASSERT_EQ(cursor.status(), JoinStatus::kExhausted);
    EXPECT_EQ(stream, ref);
    ExpectStatsEqual(join.stats(), ref_stats);
  }
  std::printf("[ crash-sweep ] cursor checkpoints: %llu crash points "
              "covered\n",
              static_cast<unsigned long long>(total_ops));
}

// ---------------------------------------------------------------------------
// ResumeLatest with every slot invalid: a status, never an abort, and the
// store bytes are left exactly as found (quarantine-and-report).
// ---------------------------------------------------------------------------

// Flips one payload byte of a checksummed page, corrupting it.
void CorruptStorePage(const std::string& path, uint32_t page_size,
                      uint64_t page) {
  const uint64_t physical = page_size + 8;  // + checksum trailer
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(page * physical + 16));
  char byte;
  f.read(&byte, 1);
  byte ^= 0x40;
  f.seekp(static_cast<std::streamoff>(page * physical + 16));
  f.write(&byte, 1);
}

TEST(CrashPoint, ResumeLatestWithEverySlotCorruptFailsSoftlyAndLeavesStore) {
  const auto pa = MakePoints(40, 303);
  const auto pb = MakePoints(40, 404);
  const DistanceJoinOptions join_options;
  std::vector<Pair> ref;
  {
    RTree<2> a = BuildPointTree(pa);
    RTree<2> b = BuildPointTree(pb);
    DistanceJoin<2> join(a, b, join_options);
    JoinResult<2> r;
    while (join.Next(&r)) ref.push_back(AsTuple(r));
  }

  const std::string path = TempPath("crash_all_slots.snap");
  std::remove(path.c_str());
  CursorOptions cursor_options;
  cursor_options.snapshot_path = path;
  cursor_options.page_size = 512;
  {
    RTree<2> a = BuildPointTree(pa);
    RTree<2> b = BuildPointTree(pb);
    DistanceJoin<2> join(a, b, join_options);
    JoinCursor<2, DistanceJoin<2>> cursor(&join, cursor_options);
    JoinResult<2> r;
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(cursor.Next(&r));
    ASSERT_TRUE(cursor.Checkpoint());  // epoch 1 (slot 1)
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(cursor.Next(&r));
    ASSERT_TRUE(cursor.Checkpoint());  // epoch 2 (slot 0)
  }
  // Corrupt the first payload page of BOTH slots (headers stay readable, so
  // opening the store heals nothing and writes nothing).
  CorruptStorePage(path, 512, 2);  // PayloadPage(0, slot 0)
  CorruptStorePage(path, 512, 3);  // PayloadPage(0, slot 1)
  const std::string before = ReadFileBytes(path);
  ASSERT_FALSE(before.empty());

  RTree<2> a = BuildPointTree(pa);
  RTree<2> b = BuildPointTree(pb);
  DistanceJoin<2> join(a, b, join_options);
  CursorOptions clean = cursor_options;
  clean.checkpoint_every = 0;
  JoinCursor<2, DistanceJoin<2>> cursor(&join, clean);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.ResumeLatest());  // a status — never an abort
  EXPECT_EQ(cursor.cursor_stats().snapshot_fallbacks, 2u);
  // Inspection left the store bytes exactly as found.
  EXPECT_EQ(ReadFileBytes(path), before);
  // The cursor degrades to a from-scratch run with the full stream.
  std::vector<Pair> stream;
  JoinResult<2> r;
  while (cursor.Next(&r)) stream.push_back(AsTuple(r));
  EXPECT_EQ(stream, ref);
}

// ---------------------------------------------------------------------------
// Hybrid-queue spill sweep (sampled; SDJ_CRASH_SPILL_STRIDE=1 for the full
// enumeration). A spill-device crash must never abort and never silently
// drop pairs: either the exact stream, or an explicit io_error(). The page
// accounting invariant holds either way.
// ---------------------------------------------------------------------------

PairEntry<2> MakeEntry(double distance, uint64_t seq) {
  PairEntry<2> e;
  e.key = distance;
  e.distance = distance;
  e.seq = seq;
  e.item1.kind = JoinItemKind::kObject;
  e.item1.ref = seq;
  e.item1.rect = Rect<2>::FromPoint({distance, 0.0});
  e.item2.kind = JoinItemKind::kNode;
  e.item2.ref = seq + 1;
  e.item2.level = 3;
  e.item2.rect = Rect<2>({0, 0}, {distance + 1, 2});
  FinalizePairMetadata(&e);
  return e;
}

void ExpectSpillInvariant(const SpillPageStats& s) {
  EXPECT_EQ(s.allocated, s.live + s.free + s.abandoned)
      << "allocated=" << s.allocated << " live=" << s.live
      << " free=" << s.free << " abandoned=" << s.abandoned;
}

TEST(CrashPointSweep, HybridSpillCrashNeverAbortsNeverSilentlyDropsPairs) {
  std::vector<double> distances;
  Rng rng(21);
  for (int i = 0; i < 900; ++i) distances.push_back(rng.Uniform(0.0, 80.0));
  std::vector<double> expected = distances;
  std::sort(expected.begin(), expected.end());

  const std::string path = TempPath("crash_spill.pages");
  HybridQueueOptions options;
  options.tier_width = 2.0;
  options.page_size = 512;
  options.buffer_pages = 16;
  options.spill_path = path;

  auto run = [&](HybridPairQueue<2>* q, std::vector<double>* popped) {
    for (size_t i = 0; i < distances.size(); ++i) {
      q->Push(MakeEntry(distances[i], i));
    }
    while (!q->Empty()) popped->push_back(q->Pop().distance);
  };

  // Counting pass: the uncrashed workload, which must match exactly.
  std::remove(path.c_str());
  options.crash_point = CrashPointOptions{};
  uint64_t total_ops = 0;
  {
    HybridPairQueue<2> q(PairEntryCompare<2>{}, options);
    std::vector<double> popped;
    run(&q, &popped);
    ASSERT_EQ(popped, expected);
    ASSERT_FALSE(q.io_error());
    total_ops = q.crash_point()->mutation_ops();
  }
  ASSERT_GT(total_ops, 0u);  // the small buffer forces eviction writes

  uint64_t stride = total_ops / 24 + 1;
  if (const char* env = std::getenv("SDJ_CRASH_SPILL_STRIDE")) {
    stride = std::max<uint64_t>(1, std::strtoull(env, nullptr, 10));
  }
  uint64_t covered = 0;
  uint64_t identical = 0;
  for (uint64_t k = 0; k < total_ops; k += stride) {
    const CrashTearMode mode = kAllTearModes[k % 3];
    SCOPED_TRACE(std::string("tear=") + CrashTearModeName(mode) +
                 " crash_at=" + std::to_string(k));
    std::remove(path.c_str());
    options.crash_point = CrashPointOptions{k, mode, /*seed=*/k + 1};
    HybridPairQueue<2> q(PairEntryCompare<2>{}, options);
    std::vector<double> popped;
    run(&q, &popped);
    EXPECT_TRUE(q.crash_point()->crashed());
    // Ordering is never violated, even across lost pages.
    for (size_t i = 1; i < popped.size(); ++i) {
      ASSERT_LE(popped[i - 1], popped[i]);
    }
    if (q.io_error()) {
      // Lost entries are reported, never silent: what did survive is a
      // subset, and the join above this queue reports kIoError.
      EXPECT_LE(popped.size(), expected.size());
    } else {
      EXPECT_EQ(popped, expected);
      ++identical;
    }
    ExpectSpillInvariant(q.spill_pages());
    ++covered;
  }
  std::printf("[ crash-sweep ] hybrid spills: %llu/%llu crash points "
              "covered (stride=%llu), %llu with bit-identical streams, "
              "rest reported io_error\n",
              static_cast<unsigned long long>(covered),
              static_cast<unsigned long long>(total_ops),
              static_cast<unsigned long long>(stride),
              static_cast<unsigned long long>(identical));
}

TEST(CrashPoint, DistanceJoinSpillCrashIsReportedNeverSilent) {
  const auto pa = MakePoints(60, 505);
  const auto pb = MakePoints(60, 606);
  const std::string path = TempPath("crash_join_spill.pages");

  DistanceJoinOptions options;
  options.use_hybrid_queue = true;
  options.hybrid.tier_width = 5.0;
  options.hybrid.page_size = 512;
  options.hybrid.buffer_pages = 8;
  options.hybrid.spill_path = path;

  // Reference stream from the identical (uncrashed) hybrid configuration.
  std::vector<Pair> ref;
  {
    std::remove(path.c_str());
    RTree<2> a = BuildPointTree(pa);
    RTree<2> b = BuildPointTree(pb);
    DistanceJoin<2> join(a, b, options);
    JoinResult<2> r;
    while (join.Next(&r)) ref.push_back(AsTuple(r));
    ASSERT_EQ(join.status(), JoinStatus::kExhausted);
  }

  for (const uint64_t k : {0ULL, 3ULL, 17ULL, 64ULL}) {
    SCOPED_TRACE("crash_at=" + std::to_string(k));
    std::remove(path.c_str());
    options.hybrid.crash_point =
        CrashPointOptions{k, CrashTearMode::kPartialPage, /*seed=*/k + 1};
    RTree<2> a = BuildPointTree(pa);
    RTree<2> b = BuildPointTree(pb);
    DistanceJoin<2> join(a, b, options);
    std::vector<Pair> stream;
    JoinResult<2> r;
    while (join.Next(&r)) stream.push_back(AsTuple(r));
    if (join.status() == JoinStatus::kExhausted) {
      // Spill fallback absorbed the crash: the stream is bit-identical.
      EXPECT_EQ(stream, ref);
    } else {
      // Entries already on the dead device were lost — reported, not silent.
      EXPECT_EQ(join.status(), JoinStatus::kIoError);
      EXPECT_LE(stream.size(), ref.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Scrub repair hook: abandoned spill pages whose faults healed are re-parked
// for reuse, and the accounting invariant survives the whole cycle.
// ---------------------------------------------------------------------------

TEST(CrashPoint, RecycleAbandonedPagesReparksHealedPages) {
  HybridQueueOptions options;
  options.tier_width = 1.0;
  options.page_size = 512;
  options.buffer_pages = 4;
  storage::FaultInjectionOptions faults;
  faults.seed = 11;
  faults.transient_read_rate = 0.10;
  faults.transient_write_rate = 0.10;
  options.fault_injection = faults;
  options.retry.max_attempts = 1;  // transient faults go unrecovered
  HybridPairQueue<2> q(PairEntryCompare<2>{}, options);

  // Push/pop rounds until some free-list or chain pages are abandoned.
  Rng rng(5);
  uint64_t seq = 0;
  for (int round = 0; round < 10 && q.spill_pages().abandoned == 0; ++round) {
    for (int i = 0; i < 1200; ++i) {
      q.Push(MakeEntry(rng.Uniform(0.0, 50.0), seq++));
    }
    while (!q.Empty()) q.Pop();
    ExpectSpillInvariant(q.spill_pages());
  }
  const uint64_t initially_abandoned = q.spill_pages().abandoned;
  ASSERT_GT(initially_abandoned, 0u);

  // The faults above are transient: the pages themselves are intact, so
  // recycling re-parks them (retrying past the occasional re-fault).
  uint64_t recycled = 0;
  for (int attempt = 0; attempt < 50 && q.spill_pages().abandoned > 0;
       ++attempt) {
    recycled += q.RecycleAbandonedPages();
    ExpectSpillInvariant(q.spill_pages());
  }
  EXPECT_EQ(recycled, initially_abandoned);
  EXPECT_EQ(q.spill_pages().abandoned, 0u);

  // The recycled pages are really reusable. Draining left the bucket
  // frontier at the max popped distance (~50), so these pushes must land
  // beyond it to reach the disk tier at all.
  const uint64_t reused_before = q.spill_pages().reused;
  for (int i = 0; i < 1200; ++i) {
    q.Push(MakeEntry(rng.Uniform(60.0, 160.0), seq++));
  }
  while (!q.Empty()) q.Pop();
  ExpectSpillInvariant(q.spill_pages());
  EXPECT_GT(q.spill_pages().reused, reused_before);
}

// ---------------------------------------------------------------------------
// R-tree build crash: construction uses the aborting pin path (CLAUDE.md —
// no recovery mid-build), so a crashed build dies. What it leaves behind
// must scrub without aborting, and a from-scratch rebuild on the same path
// must produce a fully working tree.
// ---------------------------------------------------------------------------

TEST(CrashPointDeathTest, RTreeBuildCrashDiesScrubsAndRebuilds) {
  // Forked death tests are unsafe once any test has spawned threads; the
  // threadsafe style re-executes the binary instead.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const auto points = MakePoints(300, 31);
  const std::string path = TempPath("crash_rtree.pages");
  RTreeOptions base;
  base.page_size = 512;
  base.buffer_pages = 8;  // small pool: the build writes throughout
  base.file_path = path;

  // Counting pass.
  std::remove(path.c_str());
  uint64_t total_ops = 0;
  {
    RTreeOptions options = base;
    options.crash_point = CrashPointOptions{};
    RTree<2> tree(options);
    for (size_t i = 0; i < points.size(); ++i) {
      tree.Insert(Rect<2>::FromPoint(points[i]), i);
    }
    ASSERT_TRUE(tree.Flush());
    total_ops = tree.crash_point()->mutation_ops();
  }
  ASSERT_GT(total_ops, 0u);

  // Sampled crash points across the whole build (death tests are slow).
  std::vector<uint64_t> samples = {0, total_ops / 4, total_ops / 2,
                                   (3 * total_ops) / 4, total_ops - 1};
  samples.erase(std::unique(samples.begin(), samples.end()), samples.end());
  for (const uint64_t k : samples) {
    SCOPED_TRACE("crash_at=" + std::to_string(k));
    std::remove(path.c_str());
    // The statement is a parenthesized lambda call: braces don't protect
    // commas from the preprocessor, parentheses do.
    EXPECT_DEATH(
        ([&] {
          RTreeOptions options = base;
          options.crash_point =
              CrashPointOptions{k, CrashTearMode::kPartialPage, k + 3};
          RTree<2> tree(options);
          for (size_t i = 0; i < points.size(); ++i) {
            tree.Insert(Rect<2>::FromPoint(points[i]), i);
          }
          // Either an eviction hits the dead device mid-insert (the
          // aborting pin path SDJ_CHECKs) or the final flush fails.
          if (!tree.Flush()) std::abort();
          std::_Exit(0);  // unreachable: k < total_ops must crash the build
        }()),
        "");
    // Whatever the dead build left behind scrubs without aborting.
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) {
      const storage::PageScrubReport report = storage::ScrubPages(path, 512);
      EXPECT_TRUE(report.opened);
    }
  }

  // A from-scratch rebuild on the same path yields a fully working tree.
  std::remove(path.c_str());
  {
    RTree<2> tree(base);
    for (size_t i = 0; i < points.size(); ++i) {
      tree.Insert(Rect<2>::FromPoint(points[i]), i);
    }
    ASSERT_TRUE(tree.Flush());
  }
  auto reopened = RTree<2>::Open(base);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->size(), points.size());
  std::string error;
  EXPECT_TRUE(reopened->Validate(&error)) << error;
}

}  // namespace
}  // namespace sdj
