// Tests for the failure-handling substrate (DESIGN.md "Failure model"):
// deterministic fault injection, checksum verification, buffer-pool retries,
// and graceful join degradation under injected storage faults.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/hybrid_queue.h"
#include "core/semi_join.h"
#include "core/within_join.h"
#include "data/generators.h"
#include "nn/inc_farthest.h"
#include "nn/inc_nearest.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"
#include "storage/page_store.h"

namespace sdj {
namespace {

using storage::BufferPool;
using storage::FaultCounters;
using storage::FaultInjectingPageFile;
using storage::FaultInjectionOptions;
using storage::IoStatus;
using storage::NewFaultInjectingPageFile;
using storage::NewMemoryPageFile;
using storage::PageId;
using storage::RetryPolicy;

RetryPolicy FastRetry() {
  RetryPolicy retry;
  retry.backoff_us = 0;  // keep tests fast; retries still happen
  return retry;
}

// --- injector behaviour -----------------------------------------------------

TEST(FaultInjection, DefaultsInjectNothing) {
  auto file = NewFaultInjectingPageFile(NewMemoryPageFile(64),
                                        FaultInjectionOptions{});
  const PageId id = file->Allocate();
  char buffer[64];
  std::memset(buffer, 0x2A, sizeof(buffer));
  EXPECT_EQ(file->Write(id, buffer), IoStatus::kOk);
  EXPECT_EQ(file->Read(id, buffer), IoStatus::kOk);
  const FaultCounters& c = file->counters();
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.transient_read_faults + c.transient_write_faults +
                c.hard_read_faults + c.hard_write_faults + c.bit_flips +
                c.torn_writes,
            0u);
}

TEST(FaultInjection, PeriodicTransientReadFaults) {
  FaultInjectionOptions options;
  options.transient_read_period = 3;  // every 3rd read attempt fails
  auto file = NewFaultInjectingPageFile(NewMemoryPageFile(64), options);
  const PageId id = file->Allocate();
  char buffer[64];
  int transients = 0;
  for (int i = 0; i < 12; ++i) {
    if (file->Read(id, buffer) == IoStatus::kTransient) ++transients;
  }
  EXPECT_EQ(transients, 4);
  EXPECT_EQ(file->counters().transient_read_faults, 4u);
  EXPECT_EQ(file->counters().reads, 12u);
}

TEST(FaultInjection, ProbabilisticFaultsAreSeedDeterministic) {
  FaultInjectionOptions options;
  options.seed = 42;
  options.transient_read_rate = 0.3;
  auto Run = [&options]() {
    auto file = NewFaultInjectingPageFile(NewMemoryPageFile(64), options);
    const PageId id = file->Allocate();
    char buffer[64];
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(file->Read(id, buffer) == IoStatus::kOk);
    }
    return outcomes;
  };
  const auto first = Run();
  const auto second = Run();
  EXPECT_EQ(first, second);
  // With rate 0.3 over 200 reads, both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(FaultInjection, HardReadFaultsAfterThreshold) {
  FaultInjectionOptions options;
  options.hard_read_after = 2;
  auto file = NewFaultInjectingPageFile(NewMemoryPageFile(64), options);
  const PageId id = file->Allocate();
  char buffer[64];
  EXPECT_EQ(file->Read(id, buffer), IoStatus::kOk);
  EXPECT_EQ(file->Read(id, buffer), IoStatus::kOk);
  EXPECT_EQ(file->Read(id, buffer), IoStatus::kFailed);
  EXPECT_EQ(file->Read(id, buffer), IoStatus::kFailed);
  EXPECT_EQ(file->counters().hard_read_faults, 2u);
}

TEST(FaultInjection, BitFlipCorruptsExactlyOneBit) {
  FaultInjectionOptions options;
  options.bit_flip_read_rate = 1.0;  // flip on every read
  auto file = NewFaultInjectingPageFile(NewMemoryPageFile(64), options);
  const PageId id = file->Allocate();
  char original[64];
  std::memset(original, 0x5C, sizeof(original));
  ASSERT_EQ(file->Write(id, original), IoStatus::kOk);
  char read_back[64];
  ASSERT_EQ(file->Read(id, read_back), IoStatus::kOk);  // silently corrupt
  int differing_bits = 0;
  for (size_t i = 0; i < sizeof(original); ++i) {
    differing_bits += __builtin_popcount(
        static_cast<unsigned char>(original[i] ^ read_back[i]));
  }
  EXPECT_EQ(differing_bits, 1);
  EXPECT_EQ(file->counters().bit_flips, 1u);
}

// --- checksum layer over the injector ---------------------------------------

// Builds the standard stack (memory backend -> injector -> checksums) with
// 64-byte logical pages and hands back the borrowed injector pointer.
std::unique_ptr<storage::PageFile> FaultyCheckedStore(
    const FaultInjectionOptions& faults, FaultInjectingPageFile** injector) {
  storage::PageStoreOptions options;
  options.page_size = 64;
  options.fault_injection = faults;
  return storage::CreatePageStore(options, injector);
}

TEST(Checksums, BitFlipIsDetectedAsCorrupt) {
  FaultInjectionOptions faults;
  faults.bit_flip_read_rate = 1.0;
  FaultInjectingPageFile* injector = nullptr;
  auto store = FaultyCheckedStore(faults, &injector);
  ASSERT_NE(store, nullptr);
  ASSERT_NE(injector, nullptr);
  const PageId id = store->Allocate();
  char buffer[64];
  std::memset(buffer, 0x77, sizeof(buffer));
  ASSERT_EQ(store->Write(id, buffer), IoStatus::kOk);
  // The silent bit flip below the checksum layer surfaces as kCorrupt, never
  // as wrong bytes with kOk.
  EXPECT_EQ(store->Read(id, buffer), IoStatus::kCorrupt);
  EXPECT_EQ(injector->counters().bit_flips, 1u);
}

TEST(Checksums, TornWriteIsDetectedOnRead) {
  FaultInjectionOptions faults;
  faults.torn_write_at = 1;  // the second write tears
  FaultInjectingPageFile* injector = nullptr;
  auto store = FaultyCheckedStore(faults, &injector);
  ASSERT_NE(store, nullptr);
  const PageId a = store->Allocate();
  const PageId b = store->Allocate();
  char buffer[64];
  std::memset(buffer, 0x11, sizeof(buffer));
  ASSERT_EQ(store->Write(a, buffer), IoStatus::kOk);
  std::memset(buffer, 0x22, sizeof(buffer));
  EXPECT_EQ(store->Write(b, buffer), IoStatus::kFailed);  // torn
  EXPECT_EQ(injector->counters().torn_writes, 1u);
  // The intact page reads fine; the torn page fails verification.
  EXPECT_EQ(store->Read(a, buffer), IoStatus::kOk);
  EXPECT_EQ(store->Read(b, buffer), IoStatus::kCorrupt);
}

// --- buffer-pool retries ----------------------------------------------------

TEST(BufferPoolRetry, TransientReadsAreRetriedAndRecovered) {
  FaultInjectionOptions faults;
  faults.transient_read_period = 2;  // every other read attempt fails
  FaultInjectingPageFile* injector = nullptr;
  auto store = FaultyCheckedStore(faults, &injector);
  ASSERT_NE(store, nullptr);
  BufferPool pool(std::move(store), 4, FastRetry());

  // Enough pages that the every-other-read-attempt schedule must fire.
  std::vector<PageId> ids(6);
  for (size_t p = 0; p < ids.size(); ++p) {
    char* data = pool.NewPage(&ids[p]);
    std::memset(data, 0x40 + static_cast<int>(p), pool.page_size());
    pool.Unpin(ids[p], true);
  }
  ASSERT_TRUE(pool.FlushAll());
  pool.Invalidate();

  // Every read that hits a transient fault is re-issued and succeeds.
  for (size_t p = 0; p < ids.size(); ++p) {
    char* again = pool.Pin(ids[p]);
    ASSERT_NE(again, nullptr);
    for (uint32_t i = 0; i < pool.page_size(); ++i) {
      ASSERT_EQ(again[i], 0x40 + static_cast<int>(p));
    }
    pool.Unpin(ids[p], false);
  }
  EXPECT_GT(pool.stats().read_retries, 0u);
  EXPECT_EQ(pool.stats().read_failures, 0u);
  EXPECT_GT(injector->counters().transient_read_faults, 0u);
}

TEST(BufferPoolRetry, CorruptReadsAreRetriedAndCounted) {
  FaultInjectionOptions faults;
  faults.seed = 9;
  faults.bit_flip_read_rate = 0.5;  // half the reads corrupt; re-reads heal
  FaultInjectingPageFile* injector = nullptr;
  auto store = FaultyCheckedStore(faults, &injector);
  ASSERT_NE(store, nullptr);
  RetryPolicy retry = FastRetry();
  retry.max_attempts = 16;  // enough that p(all corrupt) is negligible
  BufferPool pool(std::move(store), 4, retry);

  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x24, pool.page_size());
  pool.Unpin(id, true);
  ASSERT_TRUE(pool.FlushAll());

  uint64_t healed = 0;
  for (int round = 0; round < 20; ++round) {
    pool.Invalidate();
    char* again = pool.Pin(id);
    ASSERT_NE(again, nullptr);
    for (uint32_t i = 0; i < pool.page_size(); ++i) {
      ASSERT_EQ(static_cast<unsigned char>(again[i]), 0x24);
    }
    pool.Unpin(id, false);
    healed += pool.stats().checksum_failures;
  }
  // The schedule flips bits on ~half of all physical reads, so at least one
  // of the 20 round trips must have gone through the corrupt-retry path.
  EXPECT_GT(healed, 0u);
  EXPECT_EQ(pool.stats().read_failures, 0u);
}

TEST(BufferPoolRetry, HardReadFailureSurfacesThroughTryPin) {
  FaultInjectionOptions faults;
  faults.hard_read_after = 0;  // every physical read fails
  auto store = FaultyCheckedStore(faults, nullptr);
  ASSERT_NE(store, nullptr);
  BufferPool pool(std::move(store), 4, FastRetry());

  PageId id;
  char* data = pool.NewPage(&id);
  std::memset(data, 0x01, pool.page_size());
  pool.Unpin(id, true);
  ASSERT_TRUE(pool.FlushAll());
  pool.Invalidate();

  IoStatus status = IoStatus::kOk;
  EXPECT_EQ(pool.TryPin(id, &status), nullptr);
  EXPECT_EQ(status, IoStatus::kFailed);
  EXPECT_GT(pool.stats().read_failures, 0u);
  // A subsequent successful operation is still possible on other state: the
  // pool is not poisoned by the failure.
  PageId fresh;
  EXPECT_NE(pool.TryNewPage(&fresh), nullptr);
  pool.Unpin(fresh, false);
}

TEST(BufferPoolRetry, EvictionWriteBackFailureIsSurfaced) {
  FaultInjectionOptions faults;
  faults.hard_write_after = 0;  // every physical write fails
  auto store = FaultyCheckedStore(faults, nullptr);
  ASSERT_NE(store, nullptr);
  BufferPool pool(std::move(store), 2, FastRetry());

  // Fill the pool with dirty pages, then ask for more: every eviction
  // candidate fails to write back, so allocation must fail cleanly (no
  // abort, no data loss) instead of dropping a dirty page.
  PageId a, b;
  std::memset(pool.NewPage(&a), 0xA1, pool.page_size());
  pool.Unpin(a, true);
  std::memset(pool.NewPage(&b), 0xB2, pool.page_size());
  pool.Unpin(b, true);

  PageId c;
  IoStatus status = IoStatus::kOk;
  EXPECT_EQ(pool.TryNewPage(&c, &status), nullptr);
  EXPECT_EQ(status, IoStatus::kFailed);
  EXPECT_GT(pool.stats().write_failures, 0u);
  EXPECT_FALSE(pool.FlushAll());

  // The dirty pages are still resident and intact.
  char* data = pool.Pin(a);
  for (uint32_t i = 0; i < pool.page_size(); ++i) {
    ASSERT_EQ(static_cast<unsigned char>(data[i]), 0xA1);
  }
  pool.Unpin(a, false);
}

// --- joins over faulty storage ----------------------------------------------

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Builds a fault-free file-backed R-tree over `points` and flushes it.
void BuildTreeFile(const std::string& path,
                   const std::vector<Point<2>>& points) {
  RTreeOptions options;
  options.page_size = 512;
  options.file_path = path;
  RTree<2> tree(options);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(Rect<2>::FromPoint(points[i]), i);
  }
  ASSERT_TRUE(tree.Flush());
}

// Reopens `path` with the given fault schedule and a small buffer (so the
// join performs real physical I/O through the injector).
std::unique_ptr<RTree<2>> OpenFaulty(
    const std::string& path,
    const std::optional<FaultInjectionOptions>& faults,
    uint32_t max_attempts = 4) {
  RTreeOptions options;
  options.page_size = 512;
  options.file_path = path;
  options.buffer_pages = 8;
  options.fault_injection = faults;
  options.retry = FastRetry();
  options.retry.max_attempts = max_attempts;
  return RTree<2>::Open(options);
}

std::vector<JoinResult<2>> DrainJoin(DistanceJoin<2>* join) {
  std::vector<JoinResult<2>> out;
  JoinResult<2> pair;
  while (join->Next(&pair)) out.push_back(pair);
  return out;
}

void ExpectSameResults(const std::vector<JoinResult<2>>& a,
                       const std::vector<JoinResult<2>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id1, b[i].id1) << i;
    EXPECT_EQ(a[i].id2, b[i].id2) << i;
    EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance) << i;
  }
}

class FaultyJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_a_ = TempPath("faulty_join_a.pages");
    path_b_ = TempPath("faulty_join_b.pages");
    points_a_ = data::GenerateUniform(600, Rect<2>({0, 0}, {1000, 1000}), 11);
    points_b_ = data::GenerateUniform(600, Rect<2>({0, 0}, {1000, 1000}), 12);
    BuildTreeFile(path_a_, points_a_);
    BuildTreeFile(path_b_, points_b_);
  }

  // The reference result from fault-free reopened trees.
  std::vector<JoinResult<2>> CleanResult(const DistanceJoinOptions& options) {
    auto ta = OpenFaulty(path_a_, std::nullopt);
    auto tb = OpenFaulty(path_b_, std::nullopt);
    SDJ_CHECK(ta != nullptr && tb != nullptr);
    DistanceJoin<2> join(*ta, *tb, options);
    auto result = DrainJoin(&join);
    SDJ_CHECK(join.status() == JoinStatus::kExhausted);
    return result;
  }

  std::string path_a_;
  std::string path_b_;
  std::vector<Point<2>> points_a_;
  std::vector<Point<2>> points_b_;
};

TEST_F(FaultyJoinTest, TransientFaultsProduceIdenticalResults) {
  DistanceJoinOptions options;
  options.max_pairs = 400;
  const auto clean = CleanResult(options);

  FaultInjectionOptions faults;
  faults.seed = 3;
  faults.transient_read_rate = 0.1;
  faults.transient_write_rate = 0.1;
  auto ta = OpenFaulty(path_a_, faults);
  auto tb = OpenFaulty(path_b_, faults);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  DistanceJoin<2> join(*ta, *tb, options);
  const auto faulty = DrainJoin(&join);

  EXPECT_EQ(join.status(), JoinStatus::kExhausted);
  ExpectSameResults(clean, faulty);
  // The schedule must actually have fired, and every fault been recovered.
  EXPECT_GT(join.stats().io_retries, 0u);
  EXPECT_GT(ta->injector()->counters().transient_read_faults +
                tb->injector()->counters().transient_read_faults,
            0u);
}

TEST_F(FaultyJoinTest, BitFlipsAreDetectedAndHealedByRereads) {
  DistanceJoinOptions options;
  options.max_pairs = 400;
  const auto clean = CleanResult(options);

  FaultInjectionOptions faults;
  faults.seed = 5;
  faults.bit_flip_read_rate = 0.2;
  // With flip rate 0.2, 12 attempts make p(every re-read also corrupt)
  // ~= 4e-9 per page — the run is deterministic given the seed anyway.
  auto ta = OpenFaulty(path_a_, faults, /*max_attempts=*/12);
  auto tb = OpenFaulty(path_b_, faults, /*max_attempts=*/12);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  DistanceJoin<2> join(*ta, *tb, options);
  const auto faulty = DrainJoin(&join);

  // Silent corruption below the checksum layer is detected (counted) and
  // healed by re-reads — never silently wrong geometry.
  EXPECT_EQ(join.status(), JoinStatus::kExhausted);
  ExpectSameResults(clean, faulty);
  EXPECT_GT(join.stats().checksum_failures, 0u);
}

TEST_F(FaultyJoinTest, HardFaultYieldsIoErrorWithValidPrefix) {
  DistanceJoinOptions options;
  options.max_pairs = 400;
  const auto clean = CleanResult(options);

  FaultInjectionOptions faults;
  faults.hard_read_after = 60;  // survives Open, dies mid-join
  auto ta = OpenFaulty(path_a_, faults);
  auto tb = OpenFaulty(path_b_, std::nullopt);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  DistanceJoin<2> join(*ta, *tb, options);
  const auto partial = DrainJoin(&join);

  EXPECT_EQ(join.status(), JoinStatus::kIoError);
  ASSERT_LT(partial.size(), clean.size());
  // The partial output is a correctly ordered prefix of the full result.
  ExpectSameResults(
      std::vector<JoinResult<2>>(clean.begin(),
                                 clean.begin() + partial.size()),
      partial);
  EXPECT_GT(ta->injector()->counters().hard_read_faults, 0u);
}

TEST_F(FaultyJoinTest, SemiJoinReportsIoErrorToo) {
  FaultInjectionOptions faults;
  faults.hard_read_after = 60;
  auto ta = OpenFaulty(path_a_, faults);
  auto tb = OpenFaulty(path_b_, std::nullopt);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  SemiJoinOptions options;
  DistanceSemiJoin<2> semi(*ta, *tb, options);
  JoinResult<2> pair;
  size_t produced = 0;
  while (semi.Next(&pair)) ++produced;
  EXPECT_EQ(semi.status(), JoinStatus::kIoError);
  EXPECT_LT(produced, points_a_.size());
}

// --- single-tree traversals over faulty storage ------------------------------

// The NN engines ride the same best-first core as the joins, so an
// unreadable node page must surface as kIoError after a valid ordered
// prefix — never an abort (DESIGN.md §9).
template <typename Engine>
std::vector<typename Engine::Result> DrainNeighbors(Engine* nn) {
  std::vector<typename Engine::Result> out;
  typename Engine::Result hit;
  while (nn->Next(&hit)) out.push_back(hit);
  return out;
}

TEST_F(FaultyJoinTest, NearestNeighborYieldsIoErrorWithValidPrefix) {
  const Point<2> query{413.0, 287.0};
  auto clean_tree = OpenFaulty(path_a_, std::nullopt);
  ASSERT_NE(clean_tree, nullptr);
  IncNearestNeighbor<2> clean(*clean_tree, query);
  const auto reference = DrainNeighbors(&clean);
  ASSERT_EQ(clean.status(), JoinStatus::kExhausted);
  ASSERT_EQ(reference.size(), points_a_.size());

  FaultInjectionOptions faults;
  faults.hard_read_after = 30;  // survives Open, dies mid-traversal
  auto tree = OpenFaulty(path_a_, faults);
  ASSERT_NE(tree, nullptr);
  IncNearestNeighbor<2> nn(*tree, query);
  const auto partial = DrainNeighbors(&nn);

  EXPECT_EQ(nn.status(), JoinStatus::kIoError);
  ASSERT_LT(partial.size(), reference.size());
  for (size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i].id, reference[i].id) << i;
    EXPECT_DOUBLE_EQ(partial[i].distance, reference[i].distance) << i;
  }
  EXPECT_GT(tree->injector()->counters().hard_read_faults, 0u);
}

TEST_F(FaultyJoinTest, FarthestNeighborYieldsIoErrorWithValidPrefix) {
  const Point<2> query{413.0, 287.0};
  auto clean_tree = OpenFaulty(path_a_, std::nullopt);
  ASSERT_NE(clean_tree, nullptr);
  IncFarthestNeighbor<2> clean(*clean_tree, query);
  const auto reference = DrainNeighbors(&clean);
  ASSERT_EQ(clean.status(), JoinStatus::kExhausted);
  ASSERT_EQ(reference.size(), points_a_.size());

  FaultInjectionOptions faults;
  faults.hard_read_after = 30;
  auto tree = OpenFaulty(path_a_, faults);
  ASSERT_NE(tree, nullptr);
  IncFarthestNeighbor<2> nn(*tree, query);
  const auto partial = DrainNeighbors(&nn);

  EXPECT_EQ(nn.status(), JoinStatus::kIoError);
  ASSERT_LT(partial.size(), reference.size());
  for (size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i].id, reference[i].id) << i;
    EXPECT_DOUBLE_EQ(partial[i].distance, reference[i].distance) << i;
  }
  EXPECT_GT(tree->injector()->counters().hard_read_faults, 0u);
}

TEST_F(FaultyJoinTest, WithinJoinYieldsIoErrorWithValidPrefix) {
  WithinJoinOptions options;
  options.epsilon = 30.0;
  auto ca = OpenFaulty(path_a_, std::nullopt);
  auto cb = OpenFaulty(path_b_, std::nullopt);
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  IncWithinJoin<2> clean(*ca, *cb, options);
  std::vector<JoinResult<2>> reference;
  JoinResult<2> pair;
  while (clean.Next(&pair)) reference.push_back(pair);
  ASSERT_EQ(clean.status(), JoinStatus::kExhausted);
  ASSERT_GT(reference.size(), 0u);

  FaultInjectionOptions faults;
  faults.hard_read_after = 60;
  auto ta = OpenFaulty(path_a_, faults);
  auto tb = OpenFaulty(path_b_, std::nullopt);
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  IncWithinJoin<2> join(*ta, *tb, options);
  std::vector<JoinResult<2>> partial;
  while (join.Next(&pair)) partial.push_back(pair);

  EXPECT_EQ(join.status(), JoinStatus::kIoError);
  ASSERT_LT(partial.size(), reference.size());
  ExpectSameResults(
      std::vector<JoinResult<2>>(reference.begin(),
                                 reference.begin() + partial.size()),
      partial);
  EXPECT_GT(ta->injector()->counters().hard_read_faults, 0u);
}

TEST_F(FaultyJoinTest, KNearestStatusOverloadPropagatesErrors) {
  const Point<2> query{413.0, 287.0};
  IncNeighborOptions options;

  // Success path: k neighbors found on healthy storage.
  auto clean_tree = OpenFaulty(path_a_, std::nullopt);
  ASSERT_NE(clean_tree, nullptr);
  std::vector<IncNearestNeighbor<2>::Result> hits;
  EXPECT_EQ(KNearest<2>(*clean_tree, query, 5, options, &hits),
            JoinStatus::kOk);
  EXPECT_EQ(hits.size(), 5u);

  // Dead disk: a valid prefix plus kIoError, not an abort.
  FaultInjectionOptions faults;
  faults.hard_read_after = 30;
  auto tree = OpenFaulty(path_a_, faults);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(KNearest<2>(*tree, query, points_a_.size(), options, &hits),
            JoinStatus::kIoError);
  EXPECT_LT(hits.size(), points_a_.size());
  EXPECT_GT(tree->injector()->counters().hard_read_faults, 0u);

  // Pre-fired stop token: suspended before the first neighbor.
  util::StopSource source;
  source.RequestStop();
  IncNeighborOptions stoppable;
  stoppable.stop_token = source.token();
  EXPECT_EQ(KNearest<2>(*clean_tree, query, 5, stoppable, &hits),
            JoinStatus::kSuspended);
  EXPECT_TRUE(hits.empty());
}

// --- hybrid-queue degradation -----------------------------------------------

TEST(HybridQueueFaults, DiskWriteFailureFallsBackToMemory) {
  HybridQueueOptions options;
  options.tier_width = 1.0;
  options.page_size = 256;
  options.buffer_pages = 4;
  FaultInjectionOptions faults;
  faults.hard_write_after = 0;  // the disk tier never accepts a page
  options.fault_injection = faults;
  options.retry = FastRetry();

  HybridPairQueue<2> queue(PairEntryCompare<2>{}, options);
  const int n = 3000;  // far beyond what 4 buffer pages hold
  for (int i = 0; i < n; ++i) {
    PairEntry<2> e;
    e.distance = e.key = (i * 37) % n * 1.0;  // spread across many buckets
    e.item1.ref = i;
    e.seq = i;
    queue.Push(e);
  }
  EXPECT_GT(queue.spill_fallbacks(), 0u);
  EXPECT_FALSE(queue.io_error());  // degradation, not data loss

  // Every entry still comes out, in non-decreasing distance order.
  double last = -1.0;
  size_t popped = 0;
  while (!queue.Empty()) {
    const PairEntry<2> e = queue.Pop();
    EXPECT_GE(e.distance, last);
    last = e.distance;
    ++popped;
  }
  EXPECT_EQ(popped, static_cast<size_t>(n));
}

TEST(HybridQueueFaults, DiskReadFailureSetsIoError) {
  HybridQueueOptions options;
  options.tier_width = 1.0;
  options.page_size = 256;
  options.buffer_pages = 4;
  FaultInjectionOptions faults;
  faults.hard_read_after = 40;  // lets spills happen, then kills reads
  options.fault_injection = faults;
  options.retry = FastRetry();

  HybridPairQueue<2> queue(PairEntryCompare<2>{}, options);
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    PairEntry<2> e;
    e.distance = e.key = (i * 37) % n * 1.0;
    e.item1.ref = i;
    e.seq = i;
    queue.Push(e);
  }
  size_t popped = 0;
  double last = -1.0;
  while (!queue.Empty()) {
    const PairEntry<2> e = queue.Pop();
    EXPECT_GE(e.distance, last);
    last = e.distance;
    ++popped;
  }
  // Entries on unreadable pages are lost (counted out of Size()), the rest
  // still drain in order, and the loss is flagged for the join to surface.
  EXPECT_TRUE(queue.io_error());
  EXPECT_LT(popped, static_cast<size_t>(n));
  EXPECT_GT(popped, 0u);
}

TEST(HybridQueueFaults, JoinDegradesGracefullyWhenSpillsFail) {
  const auto a = data::GenerateUniform(400, Rect<2>({0, 0}, {500, 500}), 21);
  const auto b = data::GenerateUniform(400, Rect<2>({0, 0}, {500, 500}), 22);
  RTree<2> ta, tb;
  for (size_t i = 0; i < a.size(); ++i) ta.Insert(Rect<2>::FromPoint(a[i]), i);
  for (size_t i = 0; i < b.size(); ++i) tb.Insert(Rect<2>::FromPoint(b[i]), i);

  DistanceJoinOptions clean_options;
  clean_options.max_pairs = 300;
  clean_options.use_hybrid_queue = true;
  clean_options.hybrid.tier_width = 5.0;
  clean_options.hybrid.page_size = 256;
  clean_options.hybrid.buffer_pages = 4;
  DistanceJoin<2> clean_join(ta, tb, clean_options);
  const auto clean = DrainJoin(&clean_join);
  ASSERT_EQ(clean_join.status(), JoinStatus::kExhausted);

  DistanceJoinOptions options = clean_options;
  FaultInjectionOptions faults;
  faults.hard_write_after = 0;  // disk tier rejects everything
  options.hybrid.fault_injection = faults;
  options.hybrid.retry = FastRetry();
  DistanceJoin<2> join(ta, tb, options);
  const auto degraded = DrainJoin(&join);

  // Losing the disk tier costs memory, not correctness.
  EXPECT_EQ(join.status(), JoinStatus::kExhausted);
  ExpectSameResults(clean, degraded);
  EXPECT_GT(join.stats().spill_fallbacks, 0u);
}

}  // namespace
}  // namespace sdj
