#include "core/hybrid_queue.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/pair_entry.h"
#include "core/pair_queue.h"
#include "util/rng.h"

namespace sdj {
namespace {

PairEntry<2> MakeEntry(double distance, uint64_t seq) {
  PairEntry<2> e;
  e.key = distance;
  e.distance = distance;
  e.seq = seq;
  e.item1.kind = JoinItemKind::kObject;
  e.item1.ref = seq;
  e.item1.rect = Rect<2>::FromPoint({distance, 0.0});
  e.item2.kind = JoinItemKind::kNode;
  e.item2.ref = seq + 1;
  e.item2.level = 3;
  e.item2.rect = Rect<2>({0, 0}, {distance + 1, 2});
  FinalizePairMetadata(&e);
  return e;
}

HybridPairQueue<2> MakeQueue(double tier_width) {
  HybridQueueOptions options;
  options.tier_width = tier_width;
  options.page_size = 512;
  return HybridPairQueue<2>(PairEntryCompare<2>{}, options);
}

TEST(HybridPairQueue, EmptyInitially) {
  auto q = MakeQueue(1.0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(HybridPairQueue, SingleElementRoundTrip) {
  auto q = MakeQueue(1.0);
  q.Push(MakeEntry(0.5, 1));
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.Top().distance, 0.5);
  EXPECT_EQ(q.Pop().seq, 1u);
  EXPECT_TRUE(q.Empty());
}

TEST(HybridPairQueue, PopsInDistanceOrderAcrossAllTiers) {
  auto q = MakeQueue(2.0);
  // Distances spanning heap (<2), list (<4), and many disk buckets.
  std::vector<double> distances;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    distances.push_back(rng.Uniform(0.0, 100.0));
  }
  for (size_t i = 0; i < distances.size(); ++i) {
    q.Push(MakeEntry(distances[i], i));
  }
  std::sort(distances.begin(), distances.end());
  for (double expected : distances) {
    ASSERT_FALSE(q.Empty());
    ASSERT_DOUBLE_EQ(q.Pop().distance, expected);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(HybridPairQueue, InterleavedPushPop) {
  // Pairs generated mid-run land in whatever tier their distance dictates;
  // ordering must survive. Pushes after pops may only use distances >= the
  // last popped value (the join's consistency property), which we honor.
  auto q = MakeQueue(1.0);
  Rng rng(13);
  std::vector<double> pending;
  double last_pop = 0.0;
  uint64_t seq = 0;
  for (int round = 0; round < 5000; ++round) {
    if (pending.empty() || rng.NextDouble() < 0.55) {
      const double d = last_pop + rng.Uniform(0.0, 20.0);
      pending.push_back(d);
      std::push_heap(pending.begin(), pending.end(), std::greater<>());
      q.Push(MakeEntry(d, seq++));
    } else {
      std::pop_heap(pending.begin(), pending.end(), std::greater<>());
      const double expected = pending.back();
      pending.pop_back();
      ASSERT_DOUBLE_EQ(q.Pop().distance, expected);
      last_pop = expected;
    }
  }
}

TEST(HybridPairQueue, SerializationPreservesAllFields) {
  auto q = MakeQueue(0.5);  // tiny tier: nearly everything goes to disk
  PairEntry<2> original = MakeEntry(42.75, 77);
  original.depth = 5;
  q.Push(original);
  q.Push(MakeEntry(0.1, 1));  // something for the heap
  ASSERT_DOUBLE_EQ(q.Pop().distance, 0.1);
  const PairEntry<2> back = q.Pop();
  EXPECT_EQ(back.key, original.key);
  EXPECT_EQ(back.distance, original.distance);
  EXPECT_EQ(back.seq, original.seq);
  EXPECT_EQ(back.category, original.category);
  EXPECT_EQ(back.depth, original.depth);
  EXPECT_EQ(back.item1.ref, original.item1.ref);
  EXPECT_EQ(back.item1.kind, original.item1.kind);
  EXPECT_EQ(back.item1.rect, original.item1.rect);
  EXPECT_EQ(back.item2.ref, original.item2.ref);
  EXPECT_EQ(back.item2.level, original.item2.level);
  EXPECT_EQ(back.item2.rect, original.item2.rect);
}

TEST(HybridPairQueue, KeepsMostEntriesOutOfMemory) {
  auto q = MakeQueue(1.0);
  // All distances far beyond D2 = 2: everything lands on disk.
  for (int i = 0; i < 10000; ++i) {
    q.Push(MakeEntry(50.0 + (i % 100) * 0.3, i));
  }
  EXPECT_EQ(q.Size(), 10000u);
  EXPECT_LT(q.MaxMemorySize(), 100u);
  EXPECT_GT(q.disk_stats().physical_writes, 0u);
  // Draining still works and stays ordered.
  double last = 0.0;
  while (!q.Empty()) {
    const double d = q.Pop().distance;
    ASSERT_GE(d, last);
    last = d;
  }
}

TEST(HybridPairQueue, ClearResetsState) {
  auto q = MakeQueue(1.0);
  for (int i = 0; i < 100; ++i) q.Push(MakeEntry(i * 0.9, i));
  q.Clear();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  q.Push(MakeEntry(3.0, 1));
  EXPECT_DOUBLE_EQ(q.Pop().distance, 3.0);
}

TEST(HybridPairQueue, FileBackedSpill) {
  HybridQueueOptions options;
  options.tier_width = 1.0;
  options.page_size = 512;
  options.spill_path = ::testing::TempDir() + "/sdj_hybrid_spill.bin";
  HybridPairQueue<2> q(PairEntryCompare<2>{}, options);
  std::vector<double> distances;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    distances.push_back(rng.Uniform(0.0, 50.0));
    q.Push(MakeEntry(distances.back(), i));
  }
  std::sort(distances.begin(), distances.end());
  for (double expected : distances) {
    ASSERT_DOUBLE_EQ(q.Pop().distance, expected);
  }
}

TEST(HybridPairQueue, TieBreakOrderMaintainedWithinHeap) {
  // Equal distances: object pairs must surface before node pairs.
  auto q = MakeQueue(10.0);
  PairEntry<2> node_pair = MakeEntry(1.0, 1);
  node_pair.item1.kind = JoinItemKind::kNode;
  node_pair.item1.level = 2;
  FinalizePairMetadata(&node_pair);
  PairEntry<2> obj_pair = MakeEntry(1.0, 2);
  obj_pair.item2.kind = JoinItemKind::kObject;
  obj_pair.item2.level = -1;
  FinalizePairMetadata(&obj_pair);
  q.Push(node_pair);
  q.Push(obj_pair);
  EXPECT_EQ(q.Pop().seq, 2u);  // the object/object pair first
  EXPECT_EQ(q.Pop().seq, 1u);
}

}  // namespace
}  // namespace sdj
