#include "core/hybrid_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/pair_entry.h"
#include "core/pair_queue.h"
#include "util/rng.h"

namespace sdj {
namespace {

PairEntry<2> MakeEntry(double distance, uint64_t seq) {
  PairEntry<2> e;
  e.key = distance;
  e.distance = distance;
  e.seq = seq;
  e.item1.kind = JoinItemKind::kObject;
  e.item1.ref = seq;
  e.item1.rect = Rect<2>::FromPoint({distance, 0.0});
  e.item2.kind = JoinItemKind::kNode;
  e.item2.ref = seq + 1;
  e.item2.level = 3;
  e.item2.rect = Rect<2>({0, 0}, {distance + 1, 2});
  FinalizePairMetadata(&e);
  return e;
}

HybridPairQueue<2> MakeQueue(double tier_width) {
  HybridQueueOptions options;
  options.tier_width = tier_width;
  options.page_size = 512;
  return HybridPairQueue<2>(PairEntryCompare<2>{}, options);
}

TEST(HybridPairQueue, EmptyInitially) {
  auto q = MakeQueue(1.0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(HybridPairQueue, SingleElementRoundTrip) {
  auto q = MakeQueue(1.0);
  q.Push(MakeEntry(0.5, 1));
  EXPECT_FALSE(q.Empty());
  EXPECT_EQ(q.Top().distance, 0.5);
  EXPECT_EQ(q.Pop().seq, 1u);
  EXPECT_TRUE(q.Empty());
}

TEST(HybridPairQueue, PopsInDistanceOrderAcrossAllTiers) {
  auto q = MakeQueue(2.0);
  // Distances spanning heap (<2), list (<4), and many disk buckets.
  std::vector<double> distances;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    distances.push_back(rng.Uniform(0.0, 100.0));
  }
  for (size_t i = 0; i < distances.size(); ++i) {
    q.Push(MakeEntry(distances[i], i));
  }
  std::sort(distances.begin(), distances.end());
  for (double expected : distances) {
    ASSERT_FALSE(q.Empty());
    ASSERT_DOUBLE_EQ(q.Pop().distance, expected);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(HybridPairQueue, InterleavedPushPop) {
  // Pairs generated mid-run land in whatever tier their distance dictates;
  // ordering must survive. Pushes after pops may only use distances >= the
  // last popped value (the join's consistency property), which we honor.
  auto q = MakeQueue(1.0);
  Rng rng(13);
  std::vector<double> pending;
  double last_pop = 0.0;
  uint64_t seq = 0;
  for (int round = 0; round < 5000; ++round) {
    if (pending.empty() || rng.NextDouble() < 0.55) {
      const double d = last_pop + rng.Uniform(0.0, 20.0);
      pending.push_back(d);
      std::push_heap(pending.begin(), pending.end(), std::greater<>());
      q.Push(MakeEntry(d, seq++));
    } else {
      std::pop_heap(pending.begin(), pending.end(), std::greater<>());
      const double expected = pending.back();
      pending.pop_back();
      ASSERT_DOUBLE_EQ(q.Pop().distance, expected);
      last_pop = expected;
    }
  }
}

TEST(HybridPairQueue, SerializationPreservesAllFields) {
  auto q = MakeQueue(0.5);  // tiny tier: nearly everything goes to disk
  PairEntry<2> original = MakeEntry(42.75, 77);
  original.depth = 5;
  q.Push(original);
  q.Push(MakeEntry(0.1, 1));  // something for the heap
  ASSERT_DOUBLE_EQ(q.Pop().distance, 0.1);
  const PairEntry<2> back = q.Pop();
  EXPECT_EQ(back.key, original.key);
  EXPECT_EQ(back.distance, original.distance);
  EXPECT_EQ(back.seq, original.seq);
  EXPECT_EQ(back.category, original.category);
  EXPECT_EQ(back.depth, original.depth);
  EXPECT_EQ(back.item1.ref, original.item1.ref);
  EXPECT_EQ(back.item1.kind, original.item1.kind);
  EXPECT_EQ(back.item1.rect, original.item1.rect);
  EXPECT_EQ(back.item2.ref, original.item2.ref);
  EXPECT_EQ(back.item2.level, original.item2.level);
  EXPECT_EQ(back.item2.rect, original.item2.rect);
}

TEST(HybridPairQueue, KeepsMostEntriesOutOfMemory) {
  auto q = MakeQueue(1.0);
  // All distances far beyond D2 = 2: everything lands on disk.
  for (int i = 0; i < 10000; ++i) {
    q.Push(MakeEntry(50.0 + (i % 100) * 0.3, i));
  }
  EXPECT_EQ(q.Size(), 10000u);
  EXPECT_LT(q.MaxMemorySize(), 100u);
  EXPECT_GT(q.disk_stats().physical_writes, 0u);
  // Draining still works and stays ordered.
  double last = 0.0;
  while (!q.Empty()) {
    const double d = q.Pop().distance;
    ASSERT_GE(d, last);
    last = d;
  }
}

TEST(HybridPairQueue, ClearResetsState) {
  auto q = MakeQueue(1.0);
  for (int i = 0; i < 100; ++i) q.Push(MakeEntry(i * 0.9, i));
  q.Clear();
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  q.Push(MakeEntry(3.0, 1));
  EXPECT_DOUBLE_EQ(q.Pop().distance, 3.0);
}

TEST(HybridPairQueue, FileBackedSpill) {
  HybridQueueOptions options;
  options.tier_width = 1.0;
  options.page_size = 512;
  options.spill_path = ::testing::TempDir() + "/sdj_hybrid_spill.bin";
  HybridPairQueue<2> q(PairEntryCompare<2>{}, options);
  std::vector<double> distances;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    distances.push_back(rng.Uniform(0.0, 50.0));
    q.Push(MakeEntry(distances.back(), i));
  }
  std::sort(distances.begin(), distances.end());
  for (double expected : distances) {
    ASSERT_DOUBLE_EQ(q.Pop().distance, expected);
  }
}

// Asserts the spill-page accounting invariant: every page the spill file
// ever allocated is live in a chain, parked on the free list, or counted
// abandoned — never untracked.
void ExpectPageInvariant(const HybridPairQueue<2>& q) {
  const SpillPageStats s = q.spill_pages();
  ASSERT_EQ(s.allocated, s.live + s.free + s.abandoned);
}

TEST(HybridPairQueue, SpillPagesBoundedAcrossFillDrainCycles) {
  auto q = MakeQueue(1.0);
  uint64_t allocated_after_first = 0;
  uint64_t seq = 0;
  double base = 10.0;
  for (int round = 1; round <= 10; ++round) {
    // Same draws every round (shifted by an integer base), so each round
    // demands exactly the same pages; all distances sit above the frontier
    // the previous drain advanced to, so everything spills.
    Rng rng(100);
    std::vector<double> distances;
    for (int i = 0; i < 1000; ++i) {
      distances.push_back(base + rng.Uniform(0.0, 50.0));
    }
    for (double d : distances) q.Push(MakeEntry(d, seq++));
    ExpectPageInvariant(q);
    std::sort(distances.begin(), distances.end());
    for (double expected : distances) {
      ASSERT_DOUBLE_EQ(q.Pop().distance, expected);
    }
    ASSERT_TRUE(q.Empty());
    const SpillPageStats s = q.spill_pages();
    ASSERT_EQ(s.allocated, s.live + s.free + s.abandoned);
    EXPECT_EQ(s.abandoned, 0u);
    if (round == 1) {
      allocated_after_first = s.allocated;
      ASSERT_GT(allocated_after_first, 0u);
    } else {
      // The file never grows past the first cycle's footprint: every later
      // cycle is served from the free list.
      EXPECT_EQ(s.allocated, allocated_after_first) << "round " << round;
      EXPECT_GT(s.reused, 0u);
    }
    base += 100.0;
  }
}

TEST(HybridPairQueue, ClearRecyclesDiskPages) {
  auto q = MakeQueue(1.0);
  for (int i = 0; i < 500; ++i) q.Push(MakeEntry(20.0 + (i % 40) * 0.5, i));
  const SpillPageStats before = q.spill_pages();
  ASSERT_GT(before.live, 0u);
  q.Clear();
  const SpillPageStats cleared = q.spill_pages();
  EXPECT_EQ(cleared.live, 0u);
  EXPECT_EQ(cleared.free, before.live + before.free);
  EXPECT_EQ(cleared.allocated, before.allocated);
  // The same volume again reuses the recycled chains; the file stays put.
  for (int i = 0; i < 500; ++i) q.Push(MakeEntry(20.0 + (i % 40) * 0.5, i));
  const SpillPageStats after = q.spill_pages();
  EXPECT_EQ(after.allocated, before.allocated);
  EXPECT_GT(after.reused, 0u);
  ExpectPageInvariant(q);
}

TEST(HybridPairQueue, BucketIndexAdversarialDistances) {
  using Q = HybridPairQueue<2>;
  const double inf = std::numeric_limits<double>::infinity();
  // Garbage quotients saturate to bucket 0 instead of hitting the undefined
  // negative/NaN float-to-uint64 cast.
  EXPECT_EQ(Q::BucketIndex(std::nan(""), 1.0), 0u);
  EXPECT_EQ(Q::BucketIndex(-1.0, 1.0), 0u);
  EXPECT_EQ(Q::BucketIndex(-inf, 1.0), 0u);
  EXPECT_EQ(Q::BucketIndex(0.0, 1.0), 0u);
  EXPECT_EQ(Q::BucketIndex(std::numeric_limits<double>::denorm_min(), 1.0),
            0u);
  EXPECT_EQ(Q::BucketIndex(1.0, std::nan("")), 0u);
  // Over-range quotients saturate to the top bucket (also out of the UB
  // cast's way).
  const uint64_t top = Q::BucketIndex(inf, 1.0);
  EXPECT_EQ(top, static_cast<uint64_t>(9.0e15));
  EXPECT_EQ(Q::BucketIndex(1e300, 1.0), top);
  EXPECT_EQ(Q::BucketIndex(1.0, 5e-324), top);
  // Ordinary values still index their [k*dt, (k+1)*dt) bucket.
  EXPECT_EQ(Q::BucketIndex(1.5, 1.0), 1u);
  EXPECT_EQ(Q::BucketIndex(2.0, 0.5), 4u);
  // Property: monotone non-decreasing in distance for any tier width.
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double dt = rng.Uniform(1e-6, 10.0);
    const double a = rng.Uniform(-1e9, 1e9);
    const double b = a + rng.Uniform(0.0, 1e9);
    ASSERT_LE(Q::BucketIndex(a, dt), Q::BucketIndex(b, dt))
        << "a=" << a << " b=" << b << " dt=" << dt;
  }
}

TEST(HybridPairQueue, SpillPageAccountingSurvivesRecoveredFaults) {
  HybridQueueOptions options;
  options.tier_width = 1.0;
  options.page_size = 512;
  options.retry.backoff_us = 0;  // keep retries fast in tests
  storage::FaultInjectionOptions faults;
  faults.seed = 7;
  faults.transient_read_rate = 0.05;
  faults.transient_write_rate = 0.05;
  options.fault_injection = faults;
  HybridPairQueue<2> q(PairEntryCompare<2>{}, options);
  uint64_t seq = 0;
  double base = 10.0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 800; ++i) {
      q.Push(MakeEntry(base + (i % 60) * 0.7, seq++));
      if (i % 97 == 0) ExpectPageInvariant(q);
    }
    double last = 0.0;
    while (!q.Empty()) {
      const double d = q.Pop().distance;
      ASSERT_GE(d, last);
      last = d;
    }
    ExpectPageInvariant(q);
    EXPECT_FALSE(q.io_error());  // bounded retries absorb transient faults
    base += 100.0;
  }
}

TEST(HybridPairQueue, SpillPageAccountingSurvivesUnrecoveredFaults) {
  // No retries: transient faults become real pin/new-page failures, driving
  // the overflow fallback, the failed-tail-link free-list path, and page
  // abandonment. Whatever happens, no page may go untracked.
  HybridQueueOptions options;
  options.tier_width = 1.0;
  options.page_size = 512;
  options.retry.max_attempts = 1;
  options.retry.backoff_us = 0;
  storage::FaultInjectionOptions faults;
  faults.seed = 11;
  faults.transient_read_rate = 0.10;
  faults.transient_write_rate = 0.10;
  options.fault_injection = faults;
  HybridPairQueue<2> q(PairEntryCompare<2>{}, options);
  uint64_t seq = 0;
  double base = 10.0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 800; ++i) {
      q.Push(MakeEntry(base + (i % 60) * 0.7, seq++));
      if (i % 97 == 0) {
        // A failure here prints the exact op-index schedule injected so far,
        // so the run can be replayed deterministically (DESIGN.md §16).
        SCOPED_TRACE("fault schedule: " + q.injector()->ScheduleString());
        ExpectPageInvariant(q);
      }
    }
    // Entries may be lost to read faults (reported via io_error), but the
    // surviving stream stays ordered and the accounting stays exact.
    double last = 0.0;
    while (!q.Empty()) {
      const double d = q.Pop().distance;
      ASSERT_GE(d, last) << "fault schedule: "
                         << q.injector()->ScheduleString();
      last = d;
    }
    {
      SCOPED_TRACE("fault schedule: " + q.injector()->ScheduleString());
      ExpectPageInvariant(q);
    }
    base += 100.0;
  }
  const SpillPageStats s = q.spill_pages();
  const storage::IoStats io = q.disk_stats();
  // The schedule above must actually have exercised a failure path.
  EXPECT_GT(q.spill_fallbacks() + s.abandoned + io.read_failures +
                io.write_failures,
            0u)
      << "fault schedule: " << q.injector()->ScheduleString();
}

TEST(HybridPairQueue, TieBreakOrderMaintainedWithinHeap) {
  // Equal distances: object pairs must surface before node pairs.
  auto q = MakeQueue(10.0);
  PairEntry<2> node_pair = MakeEntry(1.0, 1);
  node_pair.item1.kind = JoinItemKind::kNode;
  node_pair.item1.level = 2;
  FinalizePairMetadata(&node_pair);
  PairEntry<2> obj_pair = MakeEntry(1.0, 2);
  obj_pair.item2.kind = JoinItemKind::kObject;
  obj_pair.item2.level = -1;
  FinalizePairMetadata(&obj_pair);
  q.Push(node_pair);
  q.Push(obj_pair);
  EXPECT_EQ(q.Pop().seq, 2u);  // the object/object pair first
  EXPECT_EQ(q.Pop().seq, 1u);
}

}  // namespace
}  // namespace sdj
