#include "nn/inc_nearest.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "geometry/distance.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

RTree<2> BuildTree(const std::vector<Point<2>>& points) {
  RTreeOptions options;
  options.page_size = 512;
  RTree<2> tree(options);
  std::vector<RTree<2>::Entry> entries;
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back({Rect<2>::FromPoint(points[i]), i});
  }
  tree.BulkLoad(std::move(entries));
  return tree;
}

TEST(IncNearestNeighbor, EmptyTreeYieldsNothing) {
  RTree<2> tree;
  IncNearestNeighbor<2> nn(tree, {0, 0});
  IncNearestNeighbor<2>::Result hit;
  EXPECT_FALSE(nn.Next(&hit));
}

TEST(IncNearestNeighbor, SingleObject) {
  RTree<2> tree;
  tree.Insert(Rect<2>::FromPoint({3, 4}), 9);
  IncNearestNeighbor<2> nn(tree, {0, 0});
  IncNearestNeighbor<2>::Result hit;
  ASSERT_TRUE(nn.Next(&hit));
  EXPECT_EQ(hit.id, 9u);
  EXPECT_DOUBLE_EQ(hit.distance, 5.0);
  EXPECT_FALSE(nn.Next(&hit));
}

TEST(IncNearestNeighbor, ReportsInNonDecreasingDistanceOrder) {
  const auto points =
      data::GenerateUniform(800, Rect<2>({0, 0}, {100, 100}), 15);
  RTree<2> tree = BuildTree(points);
  IncNearestNeighbor<2> nn(tree, {50, 50});
  IncNearestNeighbor<2>::Result hit;
  double last = 0.0;
  size_t count = 0;
  while (nn.Next(&hit)) {
    EXPECT_GE(hit.distance, last);
    last = hit.distance;
    ++count;
  }
  EXPECT_EQ(count, points.size());
}

TEST(IncNearestNeighbor, MatchesBruteForceRanking) {
  const auto points =
      data::GenerateUniform(500, Rect<2>({0, 0}, {100, 100}), 23);
  RTree<2> tree = BuildTree(points);
  Rng rng(99);
  for (int q = 0; q < 20; ++q) {
    const Point<2> query{rng.Uniform(0, 100), rng.Uniform(0, 100)};
    std::vector<double> expected;
    for (const auto& p : points) expected.push_back(Dist(query, p));
    std::sort(expected.begin(), expected.end());

    IncNearestNeighbor<2> nn(tree, query);
    IncNearestNeighbor<2>::Result hit;
    for (int k = 0; k < 25; ++k) {
      ASSERT_TRUE(nn.Next(&hit));
      ASSERT_NEAR(hit.distance, expected[k], 1e-9) << "q=" << q << " k=" << k;
    }
  }
}

// Bounded nearest search (IncNeighborOptions::max_distance) must equal the
// unbounded stream truncated at the radius — the enqueue-time prune uses
// MINDIST, a lower bound on every subtree descendant, so it can never drop
// an in-radius neighbor or reorder the survivors. Checked on raw and
// quantized trees (the latter engages the code screen, DESIGN.md §17).
TEST(IncNearestNeighbor, BoundedSearchTruncatesTheUnboundedStream) {
  const auto points =
      data::GenerateUniform(700, Rect<2>({0, 0}, {100, 100}), 31);
  for (const NodeEncoding encoding :
       {NodeEncoding::kRaw, NodeEncoding::kQuantized}) {
    RTreeOptions tree_options;
    tree_options.page_size = 512;
    tree_options.encoding = encoding;
    RTree<2> tree(tree_options);
    std::vector<RTree<2>::Entry> entries;
    for (size_t i = 0; i < points.size(); ++i) {
      entries.push_back({Rect<2>::FromPoint(points[i]), i});
    }
    tree.BulkLoad(std::move(entries));

    Rng rng(132);
    for (int q = 0; q < 10; ++q) {
      const Point<2> query{rng.Uniform(0, 100), rng.Uniform(0, 100)};
      const double radius = rng.Uniform(0.0, 30.0);
      IncNearestNeighbor<2> all(tree, query);
      IncNeighborOptions options;
      options.max_distance = radius;
      IncNearestNeighbor<2> bounded(tree, query, options);

      IncNearestNeighbor<2>::Result expected;
      IncNearestNeighbor<2>::Result hit;
      while (all.Next(&expected) && expected.distance <= radius) {
        ASSERT_TRUE(bounded.Next(&hit)) << "q=" << q;
        ASSERT_EQ(hit.id, expected.id) << "q=" << q;
        ASSERT_EQ(hit.distance, expected.distance) << "q=" << q;
      }
      EXPECT_FALSE(bounded.Next(&hit)) << "q=" << q;
      EXPECT_EQ(bounded.status(), JoinStatus::kExhausted);
    }
  }
}

TEST(IncNearestNeighbor, WorksWithManhattanMetric) {
  const auto points =
      data::GenerateUniform(300, Rect<2>({0, 0}, {100, 100}), 31);
  RTree<2> tree = BuildTree(points);
  const Point<2> query{25, 75};
  std::vector<double> expected;
  for (const auto& p : points) {
    expected.push_back(Dist(query, p, Metric::kManhattan));
  }
  std::sort(expected.begin(), expected.end());
  IncNearestNeighbor<2> nn(tree, query, Metric::kManhattan);
  IncNearestNeighbor<2>::Result hit;
  for (int k = 0; k < 10; ++k) {
    ASSERT_TRUE(nn.Next(&hit));
    ASSERT_NEAR(hit.distance, expected[k], 1e-9);
  }
}

TEST(IncNearestNeighbor, IncrementalCostIsSublinear) {
  // Fetching only the first neighbor must touch far fewer nodes than a full
  // traversal ("fast first" behaviour).
  const auto points =
      data::GenerateUniform(5000, Rect<2>({0, 0}, {1000, 1000}), 47);
  RTree<2> tree = BuildTree(points);
  IncNearestNeighbor<2> nn(tree, {500, 500});
  IncNearestNeighbor<2>::Result hit;
  ASSERT_TRUE(nn.Next(&hit));
  EXPECT_LT(nn.stats().nodes_expanded, tree.num_nodes() / 4);
  EXPECT_EQ(nn.stats().neighbors_reported, 1u);
}

TEST(IncNearestNeighbor, ExtendedObjectsUseMinDist) {
  RTree<2> tree;
  tree.Insert(Rect<2>({10, 0}, {20, 10}), 0);  // closest face at x=10
  tree.Insert(Rect<2>({5, 5}, {6, 6}), 1);
  IncNearestNeighbor<2> nn(tree, {0, 0});
  IncNearestNeighbor<2>::Result hit;
  ASSERT_TRUE(nn.Next(&hit));
  EXPECT_EQ(hit.id, 1u);
  EXPECT_NEAR(hit.distance, Dist(Point<2>{0, 0}, Point<2>{5, 5}), 1e-12);
  ASSERT_TRUE(nn.Next(&hit));
  EXPECT_EQ(hit.id, 0u);
  EXPECT_DOUBLE_EQ(hit.distance, 10.0);
}

TEST(IncNearestNeighbor, QueryInsideObjectHasZeroDistance) {
  RTree<2> tree;
  tree.Insert(Rect<2>({0, 0}, {10, 10}), 0);
  IncNearestNeighbor<2> nn(tree, {5, 5});
  IncNearestNeighbor<2>::Result hit;
  ASSERT_TRUE(nn.Next(&hit));
  EXPECT_DOUBLE_EQ(hit.distance, 0.0);
}

}  // namespace
}  // namespace sdj
