#include "quadtree/quadtree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "util/rng.h"

namespace sdj {
namespace {

using test::BruteForcePairs;
using test::BruteForceSemiDistances;

const Rect<2> kWorld({0, 0}, {1024, 1024});

PointQuadtree<2> BuildQuadtree(const std::vector<Point<2>>& points,
                               uint32_t bucket_override = 0) {
  QuadtreeOptions options;
  options.page_size = 512;
  options.bucket_capacity_override = bucket_override;
  PointQuadtree<2> tree(kWorld, options);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], i);
  }
  return tree;
}

TEST(PointQuadtree, EmptyTree) {
  PointQuadtree<2> tree(kWorld);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Validate());
  std::vector<PointQuadtree<2>::Entry> out;
  tree.RangeQuery(kWorld, &out);
  EXPECT_TRUE(out.empty());
}

TEST(PointQuadtree, SingleInsertRootLeaf) {
  PointQuadtree<2> tree(kWorld);
  tree.Insert(Point<2>{100, 200}, 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Validate());
  auto root = tree.Pin(tree.root());
  EXPECT_TRUE(root.is_leaf());
  EXPECT_EQ(root.count(), 1u);
  EXPECT_EQ(root.ref(0), 7u);
}

TEST(PointQuadtree, SplitsIntoQuadrants) {
  // Force tiny buckets so splits happen early.
  std::vector<Point<2>> points = {{100, 100}, {900, 100}, {100, 900},
                                  {900, 900}, {200, 200}, {800, 800}};
  PointQuadtree<2> tree = BuildQuadtree(points, /*bucket_override=*/4);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  EXPECT_GT(tree.num_nodes(), 1u);
  auto root = tree.Pin(tree.root());
  EXPECT_FALSE(root.is_leaf());
  // Children are genuine quadrants of the world.
  for (uint32_t i = 0; i < root.count(); ++i) {
    const Rect<2> q = root.rect(i);
    EXPECT_DOUBLE_EQ(q.Area(), kWorld.Area() / 4.0);
  }
}

TEST(PointQuadtree, ManyInsertsStayValidAndQueryable) {
  const auto points = data::GenerateUniform(5000, kWorld, 41);
  PointQuadtree<2> tree = BuildQuadtree(points);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  EXPECT_EQ(tree.size(), points.size());

  Rng rng(42);
  for (int q = 0; q < 40; ++q) {
    const double cx = rng.Uniform(0, 1024);
    const double cy = rng.Uniform(0, 1024);
    const double half = rng.Uniform(5, 150);
    const Rect<2> window({cx - half, cy - half}, {cx + half, cy + half});
    std::vector<PointQuadtree<2>::Entry> out;
    tree.RangeQuery(window, &out);
    std::set<ObjectId> got;
    for (const auto& e : out) got.insert(e.id);
    ASSERT_EQ(got.size(), out.size());
    std::set<ObjectId> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      if (window.Contains(points[i])) expected.insert(i);
    }
    ASSERT_EQ(got, expected) << "query " << q;
  }
}

TEST(PointQuadtree, TightClustersSubdivideDeeply) {
  data::ClusterOptions options;
  options.num_points = 2000;
  options.extent = kWorld;
  options.num_clusters = 2;
  options.spread_fraction = 0.002;  // extremely tight
  options.seed = 43;
  const auto points = data::GenerateClustered(options);
  PointQuadtree<2> tree = BuildQuadtree(points, /*bucket_override=*/8);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  EXPECT_EQ(tree.size(), points.size());
}

TEST(PointQuadtree, ForEachObjectVisitsAllOnce) {
  const auto points = data::GenerateUniform(800, kWorld, 44);
  PointQuadtree<2> tree = BuildQuadtree(points);
  std::set<ObjectId> seen;
  tree.ForEachObject([&seen](const Rect<2>& rect, ObjectId id) {
    EXPECT_EQ(rect.lo, rect.hi);
    EXPECT_TRUE(seen.insert(id).second);
  });
  EXPECT_EQ(seen.size(), points.size());
}

TEST(PointQuadtree, Octree3D) {
  const Rect<3> world({0, 0, 0}, {512, 512, 512});
  QuadtreeOptions options;
  options.page_size = 1024;
  PointQuadtree<3> tree(world, options);
  Rng rng(45);
  std::vector<Point<3>> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back(
        {rng.Uniform(0, 512), rng.Uniform(0, 512), rng.Uniform(0, 512)});
    tree.Insert(points.back(), i);
  }
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;
  const Rect<3> window({100, 100, 100}, {300, 280, 260});
  std::vector<PointQuadtree<3>::Entry> out;
  tree.RangeQuery(window, &out);
  size_t expected = 0;
  for (const auto& p : points) {
    if (window.Contains(p)) ++expected;
  }
  EXPECT_EQ(out.size(), expected);
}

// --- joins over quadtrees (index-genericity of the engine) ---

TEST(QuadtreeJoin, MatchesBruteForcePrefix) {
  const auto a = data::GenerateUniform(400, kWorld, 46);
  const auto b = data::GenerateUniform(500, kWorld, 47);
  PointQuadtree<2> ta = BuildQuadtree(a);
  PointQuadtree<2> tb = BuildQuadtree(b);
  const auto reference = BruteForcePairs(a, b);

  DistanceJoinOptions options;
  DistanceJoin<2, PointQuadtree<2>> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 600; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
    ASSERT_NEAR(pair.distance, Dist(a[pair.id1], b[pair.id2]), 1e-9);
  }
}

TEST(QuadtreeJoin, FullEnumerationExact) {
  const auto a = data::GenerateUniform(40, kWorld, 48);
  const auto b = data::GenerateUniform(45, kWorld, 49);
  PointQuadtree<2> ta = BuildQuadtree(a, 4);
  PointQuadtree<2> tb = BuildQuadtree(b, 4);
  DistanceJoinOptions options;
  DistanceJoin<2, PointQuadtree<2>> join(ta, tb, options);
  JoinResult<2> pair;
  std::set<std::pair<ObjectId, ObjectId>> seen;
  double last = 0.0;
  while (join.Next(&pair)) {
    EXPECT_TRUE(seen.insert({pair.id1, pair.id2}).second);
    EXPECT_GE(pair.distance, last - 1e-12);
    last = pair.distance;
  }
  EXPECT_EQ(seen.size(), a.size() * b.size());
}

TEST(QuadtreeJoin, RangeAndMaxPairs) {
  const auto a = data::GenerateUniform(200, kWorld, 50);
  const auto b = data::GenerateUniform(200, kWorld, 51);
  PointQuadtree<2> ta = BuildQuadtree(a);
  PointQuadtree<2> tb = BuildQuadtree(b);
  const auto reference = BruteForcePairs(a, b);
  const double dmax = reference[3000].distance;

  DistanceJoinOptions options;
  options.max_distance = dmax;
  DistanceJoin<2, PointQuadtree<2>> join(ta, tb, options);
  JoinResult<2> pair;
  size_t count = 0;
  while (join.Next(&pair)) {
    EXPECT_LE(pair.distance, dmax);
    ++count;
  }
  size_t expected = 0;
  for (const auto& p : reference) {
    if (p.distance <= dmax) ++expected;
  }
  EXPECT_EQ(count, expected);
}

TEST(QuadtreeSemiJoin, MatchesBruteForce) {
  const auto a = data::GenerateUniform(250, kWorld, 52);
  const auto b = data::GenerateUniform(300, kWorld, 53);
  PointQuadtree<2> ta = BuildQuadtree(a);
  PointQuadtree<2> tb = BuildQuadtree(b);
  const auto expected = BruteForceSemiDistances(a, b);

  for (SemiJoinBound bound :
       {SemiJoinBound::kNone, SemiJoinBound::kLocal, SemiJoinBound::kGlobalAll}) {
    SemiJoinOptions options;
    options.bound = bound;
    DistanceSemiJoin<2, PointQuadtree<2>> semi(ta, tb, options);
    JoinResult<2> pair;
    std::vector<double> got;
    std::set<ObjectId> firsts;
    while (semi.Next(&pair)) {
      got.push_back(pair.distance);
      EXPECT_TRUE(firsts.insert(pair.id1).second);
    }
    ASSERT_EQ(got.size(), a.size());
    for (size_t k = 0; k < got.size(); ++k) {
      ASSERT_NEAR(got[k], expected[k], 1e-9)
          << "bound=" << static_cast<int>(bound) << " k=" << k;
    }
  }
}

TEST(QuadtreeJoin, EstimationStaysCorrectDespiteWeakCounts) {
  // Quadtrees guarantee only count >= 1 per subtree, so estimation tightens
  // late but must never lose results.
  const auto a = data::GenerateUniform(300, kWorld, 54);
  const auto b = data::GenerateUniform(300, kWorld, 55);
  PointQuadtree<2> ta = BuildQuadtree(a);
  PointQuadtree<2> tb = BuildQuadtree(b);
  const auto reference = BruteForcePairs(a, b);

  DistanceJoinOptions options;
  options.max_pairs = 50;
  options.estimate_max_distance = true;
  DistanceJoin<2, PointQuadtree<2>> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(join.Next(&pair));
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
  EXPECT_EQ(join.stats().restarts, 0u);
}

TEST(QuadtreeJoin, MixedClusteredWorkload) {
  data::ClusterOptions copts;
  copts.num_points = 600;
  copts.extent = kWorld;
  copts.num_clusters = 6;
  copts.seed = 56;
  const auto a = data::GenerateClustered(copts);
  const auto b = data::GenerateUniform(400, kWorld, 57);
  PointQuadtree<2> ta = BuildQuadtree(a);
  PointQuadtree<2> tb = BuildQuadtree(b);
  const auto reference = BruteForcePairs(a, b);
  DistanceJoinOptions options;
  DistanceJoin<2, PointQuadtree<2>> join(ta, tb, options);
  JoinResult<2> pair;
  for (size_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k].distance, 1e-9) << k;
  }
}

}  // namespace
}  // namespace sdj
