// Tests for the worker pool behind the engine's parallel expansion mode:
// shard coverage/disjointness (the determinism foundation), completion
// visibility, reuse across many calls, and inline fallbacks.
#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace sdj::util {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ZeroAndTinyRangesAreSafe) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ShardsCoverEveryIndexExactlyOnce) {
  // Every index written exactly once regardless of n/threads divisibility —
  // the property the slot-indexed merge in the join engine relies on.
  for (const int threads : {2, 3, 4, 7}) {
    ThreadPool pool(threads);
    for (const size_t n : {2u, 7u, 128u, 1001u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " n=" << n
                                     << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, WritesAreVisibleAfterReturn) {
  // The completion handshake must give the caller a happens-before edge
  // over all shard writes: plain (non-atomic) slot writes are fully visible.
  ThreadPool pool(4);
  constexpr size_t kN = 4096;
  std::vector<uint64_t> out(kN, 0);
  for (int round = 1; round <= 50; ++round) {
    pool.ParallelFor(kN, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = static_cast<uint64_t>(i) * round;
      }
    });
    uint64_t sum = 0;
    for (size_t i = 0; i < kN; ++i) sum += out[i];
    ASSERT_EQ(sum, static_cast<uint64_t>(round) * (kN * (kN - 1) / 2))
        << round;
  }
}

TEST(ThreadPool, StaticShardingIsAFixedFunctionOfNAndThreads) {
  // Record which shard range covered each index; re-running must reproduce
  // the identical assignment (no work stealing, no timing dependence).
  ThreadPool pool(3);
  constexpr size_t kN = 997;
  std::vector<size_t> first(kN, 0);
  std::vector<size_t> second(kN, 0);
  for (auto* target : {&first, &second}) {
    pool.ParallelFor(kN, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) (*target)[i] = begin;
    });
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace sdj::util
