// Shared helpers for the join/semi-join test suites: tree construction from
// point sets and brute-force reference results.
#ifndef SDJOIN_TESTS_JOIN_TEST_UTIL_H_
#define SDJOIN_TESTS_JOIN_TEST_UTIL_H_

#include <algorithm>
#include <limits>
#include <vector>

#include "geometry/distance.h"
#include "geometry/metrics.h"
#include "geometry/point.h"
#include "rtree/rtree.h"

namespace sdj::test {

// Builds a small-node R-tree over `points` with object ids = indices.
inline RTree<2> BuildPointTree(const std::vector<Point<2>>& points,
                               uint32_t page_size = 512,
                               bool bulk = true,
                               NodeEncoding encoding = NodeEncoding::kRaw) {
  RTreeOptions options;
  options.page_size = page_size;
  options.encoding = encoding;
  RTree<2> tree(options);
  if (bulk) {
    std::vector<RTree<2>::Entry> entries;
    entries.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      entries.push_back({Rect<2>::FromPoint(points[i]), i});
    }
    tree.BulkLoad(std::move(entries));
  } else {
    for (size_t i = 0; i < points.size(); ++i) {
      tree.Insert(Rect<2>::FromPoint(points[i]), i);
    }
  }
  return tree;
}

struct RefPair {
  double distance;
  size_t id1;
  size_t id2;
};

// All |a| x |b| pairs sorted by distance (ascending).
inline std::vector<RefPair> BruteForcePairs(const std::vector<Point<2>>& a,
                                            const std::vector<Point<2>>& b,
                                            Metric metric = Metric::kEuclidean) {
  std::vector<RefPair> pairs;
  pairs.reserve(a.size() * b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      pairs.push_back({Dist(a[i], b[j], metric), i, j});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const RefPair& x, const RefPair& y) {
    return x.distance < y.distance;
  });
  return pairs;
}

// For each a[i], the distance to its nearest b (the semi-join reference),
// sorted ascending.
inline std::vector<double> BruteForceSemiDistances(
    const std::vector<Point<2>>& a, const std::vector<Point<2>>& b,
    Metric metric = Metric::kEuclidean) {
  std::vector<double> nearest(a.size(),
                              std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < a.size(); ++i) {
    for (const auto& q : b) {
      nearest[i] = std::min(nearest[i], Dist(a[i], q, metric));
    }
  }
  std::sort(nearest.begin(), nearest.end());
  return nearest;
}

// Per-object nearest distance (unsorted, indexed by a's ids).
inline std::vector<double> BruteForceNearestByObject(
    const std::vector<Point<2>>& a, const std::vector<Point<2>>& b,
    Metric metric = Metric::kEuclidean) {
  std::vector<double> nearest(a.size(),
                              std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < a.size(); ++i) {
    for (const auto& q : b) {
      nearest[i] = std::min(nearest[i], Dist(a[i], q, metric));
    }
  }
  return nearest;
}

}  // namespace sdj::test

#endif  // SDJOIN_TESTS_JOIN_TEST_UTIL_H_
