// Tests for the Section 2.2.5 extensions: selection filters, reverse-mode
// minimum-distance estimation, reverse semi-join, ordered intersection join,
// and the farthest-neighbor iterator.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/intersection_join.h"
#include "core/semi_join.h"
#include "data/generators.h"
#include "join_test_util.h"
#include "nn/inc_farthest.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

using test::BruteForcePairs;
using test::BuildPointTree;

std::vector<Point<2>> PointsA(size_t n = 200, uint64_t seed = 301) {
  return data::GenerateUniform(n, Rect<2>({0, 0}, {1000, 1000}), seed);
}
std::vector<Point<2>> PointsB(size_t n = 250, uint64_t seed = 302) {
  return data::GenerateUniform(n, Rect<2>({0, 0}, {1000, 1000}), seed);
}

std::vector<JoinResult<2>> DrainJoin(DistanceJoin<2>& join, size_t limit) {
  std::vector<JoinResult<2>> out;
  JoinResult<2> pair;
  while (out.size() < limit && join.Next(&pair)) out.push_back(pair);
  return out;
}

TEST(JoinFilters, Window1RestrictsFirstRelation) {
  const auto a = PointsA();
  const auto b = PointsB();
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const Rect<2> window({0, 0}, {400, 400});

  JoinFilters<2> filters;
  filters.window1 = window;
  DistanceJoin<2> join(ta, tb, DistanceJoinOptions{}, filters);
  const auto got = DrainJoin(join, a.size() * b.size());

  // Reference: only a-points inside the window participate.
  size_t expected = 0;
  for (const auto& p : a) {
    if (window.Contains(p)) expected += b.size();
  }
  EXPECT_EQ(got.size(), expected);
  for (const auto& r : got) {
    EXPECT_TRUE(window.Contains(a[r.id1]));
  }
  EXPECT_GT(join.stats().pruned_by_filter, 0u);
}

TEST(JoinFilters, BothWindowsCompose) {
  const auto a = PointsA(150, 303);
  const auto b = PointsB(150, 304);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const Rect<2> w1({0, 0}, {500, 1000});
  const Rect<2> w2({250, 0}, {1000, 500});

  JoinFilters<2> filters;
  filters.window1 = w1;
  filters.window2 = w2;
  DistanceJoin<2> join(ta, tb, DistanceJoinOptions{}, filters);
  const auto got = DrainJoin(join, a.size() * b.size());
  size_t in1 = 0;
  size_t in2 = 0;
  for (const auto& p : a) {
    if (w1.Contains(p)) ++in1;
  }
  for (const auto& p : b) {
    if (w2.Contains(p)) ++in2;
  }
  EXPECT_EQ(got.size(), in1 * in2);
  // Results remain distance-ordered under filtering.
  for (size_t k = 1; k < got.size(); ++k) {
    EXPECT_GE(got[k].distance, got[k - 1].distance - 1e-12);
  }
}

TEST(JoinFilters, ObjectPredicateFiltersPipeline) {
  // The paper's "city with population > 5 million" pattern (Section 5,
  // option 1) pushed into the engine.
  const auto a = PointsA(120, 305);
  const auto b = PointsB(120, 306);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  JoinFilters<2> filters;
  filters.object_filter1 = [](ObjectId id) { return id % 3 == 0; };
  DistanceJoin<2> join(ta, tb, DistanceJoinOptions{}, filters);
  const auto got = DrainJoin(join, a.size() * b.size());
  EXPECT_EQ(got.size(), ((a.size() + 2) / 3) * b.size());
  for (const auto& r : got) {
    EXPECT_EQ(r.id1 % 3, 0u);
  }
}

TEST(JoinFilters, SemiJoinWithWindowOnSecondRelation) {
  // "Nearest qualifying warehouse": the nearest b inside the window.
  const auto a = PointsA(80, 307);
  const auto b = PointsB(120, 308);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  const Rect<2> window({200, 200}, {800, 800});

  JoinFilters<2> filters;
  filters.window2 = window;
  SemiJoinOptions options;
  // Note: d_max bounds must stay off when the second relation is filtered
  // (the engine enforces this — the nearest *qualifying* partner can be
  // farther than the geometric bound).
  options.bound = SemiJoinBound::kNone;
  DistanceSemiJoin<2> semi(ta, tb, options, filters);
  JoinResult<2> pair;
  size_t count = 0;
  while (semi.Next(&pair)) {
    // The reported partner is within the window and is the nearest such b.
    ASSERT_TRUE(window.Contains(b[pair.id2]));
    double best = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < b.size(); ++j) {
      if (window.Contains(b[j])) best = std::min(best, Dist(a[pair.id1], b[j]));
    }
    ASSERT_NEAR(pair.distance, best, 1e-9);
    ++count;
  }
  EXPECT_EQ(count, a.size());
}

TEST(ReverseEstimation, MatchesUnestimatedReverseJoin) {
  const auto a = PointsA(150, 309);
  const auto b = PointsB(200, 310);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  for (uint64_t k : {1u, 10u, 100u}) {
    DistanceJoinOptions plain;
    plain.reverse_order = true;
    plain.max_pairs = k;
    DistanceJoin<2> join_plain(ta, tb, plain);
    const auto expected = DrainJoin(join_plain, k);

    DistanceJoinOptions est = plain;
    est.estimate_max_distance = true;
    DistanceJoin<2> join_est(ta, tb, est);
    const auto got = DrainJoin(join_est, k);

    ASSERT_EQ(got.size(), expected.size()) << "k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i].distance, expected[i].distance, 1e-9)
          << "k=" << k << " i=" << i;
    }
    EXPECT_EQ(join_est.stats().restarts, 0u);
  }
}

TEST(ReverseEstimation, PrunesQueueGrowth) {
  const auto a = PointsA(400, 311);
  const auto b = PointsB(500, 312);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  DistanceJoinOptions plain;
  plain.reverse_order = true;
  plain.max_pairs = 20;
  DistanceJoin<2> join_plain(ta, tb, plain);
  DrainJoin(join_plain, 20);

  DistanceJoinOptions est = plain;
  est.estimate_max_distance = true;
  DistanceJoin<2> join_est(ta, tb, est);
  DrainJoin(join_est, 20);

  EXPECT_LT(join_est.stats().queue_pushes, join_plain.stats().queue_pushes);
}

TEST(ReverseSemiJoin, ReportsFarthestPartnerPerObject) {
  // The paper's "second definition" (Section 2.3): applying the reverse join
  // to the semi-join reports, for each o1, the o2 farthest from it, in
  // reverse order of that distance.
  const auto a = PointsA(60, 313);
  const auto b = PointsB(80, 314);
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);

  SemiJoinOptions options;
  options.filter = SemiJoinFilter::kInside2;
  options.join.reverse_order = true;
  DistanceSemiJoin<2> semi(ta, tb, options);
  JoinResult<2> pair;
  std::set<ObjectId> firsts;
  double last = std::numeric_limits<double>::infinity();
  size_t count = 0;
  while (semi.Next(&pair)) {
    EXPECT_TRUE(firsts.insert(pair.id1).second);
    EXPECT_LE(pair.distance, last + 1e-12);
    last = pair.distance;
    double farthest = 0.0;
    for (const auto& q : b) farthest = std::max(farthest, Dist(a[pair.id1], q));
    ASSERT_NEAR(pair.distance, farthest, 1e-9) << pair.id1;
    ++count;
  }
  EXPECT_EQ(count, a.size());
}

// --- OrderedIntersectionJoin ---

std::vector<Rect<2>> RandomBoxes(size_t n, uint64_t seed, double max_side) {
  Rng rng(seed);
  std::vector<Rect<2>> boxes;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(0, 1000 - max_side);
    const double y = rng.Uniform(0, 1000 - max_side);
    boxes.push_back({{x, y},
                     {x + rng.Uniform(1, max_side), y + rng.Uniform(1, max_side)}});
  }
  return boxes;
}

RTree<2> BuildBoxTree(const std::vector<Rect<2>>& boxes) {
  RTreeOptions options;
  options.page_size = 512;
  RTree<2> tree(options);
  std::vector<RTree<2>::Entry> entries;
  for (size_t i = 0; i < boxes.size(); ++i) entries.push_back({boxes[i], i});
  tree.BulkLoad(std::move(entries));
  return tree;
}

TEST(OrderedIntersectionJoin, FindsAllIntersectionsInAnchorOrder) {
  const auto roads = RandomBoxes(150, 315, 40);
  const auto rivers = RandomBoxes(150, 316, 40);
  RTree<2> tr = BuildBoxTree(roads);
  RTree<2> tv = BuildBoxTree(rivers);
  const Point<2> house{500, 500};

  OrderedIntersectionJoin<2> join(tr, tv, house);
  std::vector<JoinResult<2>> got;
  JoinResult<2> pair;
  while (join.Next(&pair)) got.push_back(pair);

  // Brute-force reference.
  std::set<std::pair<size_t, size_t>> expected;
  for (size_t i = 0; i < roads.size(); ++i) {
    for (size_t j = 0; j < rivers.size(); ++j) {
      if (roads[i].Intersects(rivers[j])) expected.insert({i, j});
    }
  }
  ASSERT_EQ(got.size(), expected.size());
  std::set<std::pair<size_t, size_t>> seen;
  for (size_t k = 0; k < got.size(); ++k) {
    const std::pair<size_t, size_t> key{got[k].id1, got[k].id2};
    EXPECT_TRUE(expected.count(key));
    EXPECT_TRUE(seen.insert(key).second);
    const double d = MinDist(
        house, roads[got[k].id1].IntersectionWith(rivers[got[k].id2]));
    ASSERT_NEAR(got[k].distance, d, 1e-9);
    if (k > 0) {
      ASSERT_GE(got[k].distance, got[k - 1].distance - 1e-12);
    }
  }
}

TEST(OrderedIntersectionJoin, EmptyWhenNothingIntersects) {
  std::vector<Rect<2>> left = {{{0, 0}, {10, 10}}};
  std::vector<Rect<2>> right = {{{20, 20}, {30, 30}}};
  RTree<2> tl = BuildBoxTree(left);
  RTree<2> tr = BuildBoxTree(right);
  OrderedIntersectionJoin<2> join(tl, tr, {0, 0});
  JoinResult<2> pair;
  EXPECT_FALSE(join.Next(&pair));
}

TEST(OrderedIntersectionJoin, PointDataRequiresCoincidence) {
  std::vector<Point<2>> a = {{1, 1}, {5, 5}};
  std::vector<Point<2>> b = {{5, 5}, {9, 9}};
  RTree<2> ta = BuildPointTree(a);
  RTree<2> tb = BuildPointTree(b);
  OrderedIntersectionJoin<2> join(ta, tb, {0, 0});
  JoinResult<2> pair;
  ASSERT_TRUE(join.Next(&pair));
  EXPECT_EQ(pair.id1, 1u);
  EXPECT_EQ(pair.id2, 0u);
  EXPECT_NEAR(pair.distance, Dist(Point<2>{0, 0}, Point<2>{5, 5}), 1e-12);
  EXPECT_FALSE(join.Next(&pair));
}

// --- IncFarthestNeighbor ---

TEST(IncFarthestNeighbor, MatchesBruteForceDescendingOrder) {
  const auto points = PointsA(300, 317);
  RTree<2> tree = BuildPointTree(points);
  const Point<2> query{100, 900};
  std::vector<double> expected;
  for (const auto& p : points) expected.push_back(Dist(query, p));
  std::sort(expected.rbegin(), expected.rend());

  IncFarthestNeighbor<2> fn(tree, query);
  IncFarthestNeighbor<2>::Result hit;
  for (size_t k = 0; k < points.size(); ++k) {
    ASSERT_TRUE(fn.Next(&hit));
    ASSERT_NEAR(hit.distance, expected[k], 1e-9) << k;
  }
  EXPECT_FALSE(fn.Next(&hit));
}

TEST(IncFarthestNeighbor, FirstResultIsCheap) {
  const auto points = PointsA(5000, 318);
  RTree<2> tree = BuildPointTree(points);
  IncFarthestNeighbor<2> fn(tree, {500, 500});
  IncFarthestNeighbor<2>::Result hit;
  ASSERT_TRUE(fn.Next(&hit));
  EXPECT_LT(fn.stats().nodes_expanded, tree.num_nodes() / 2);
}

TEST(IncFarthestNeighbor, EmptyTree) {
  RTree<2> tree;
  IncFarthestNeighbor<2> fn(tree, {0, 0});
  IncFarthestNeighbor<2>::Result hit;
  EXPECT_FALSE(fn.Next(&hit));
}

}  // namespace
}  // namespace sdj
