// Tests for segment geometry and for line-data distance joins through the
// object-bounding-rectangle mode (the paper's "future work" on lines).
#include "geometry/segment.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance_join.h"
#include "core/semi_join.h"
#include "rtree/rtree.h"
#include "util/rng.h"

namespace sdj {
namespace {

TEST(Segment, MbrCoversBothEndpoints) {
  const Segment<2> s{{3, 7}, {1, 2}};
  EXPECT_EQ(s.Mbr(), Rect<2>({1, 2}, {3, 7}));
}

TEST(SegmentPointDistance, KnownCases) {
  const Segment<2> s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(Dist(Point<2>{5, 3}, s), 3.0);    // above the middle
  EXPECT_DOUBLE_EQ(Dist(Point<2>{-4, 3}, s), 5.0);   // beyond endpoint a
  EXPECT_DOUBLE_EQ(Dist(Point<2>{13, 4}, s), 5.0);   // beyond endpoint b
  EXPECT_DOUBLE_EQ(Dist(Point<2>{7, 0}, s), 0.0);    // on the segment
}

TEST(SegmentPointDistance, DegenerateSegmentIsPoint) {
  const Segment<2> s{{2, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(Dist(Point<2>{5, 6}, s), 5.0);
}

TEST(SegmentSegmentDistance, CrossingSegmentsAreZero) {
  const Segment<2> s1{{0, 0}, {10, 10}};
  const Segment<2> s2{{0, 10}, {10, 0}};
  EXPECT_NEAR(Dist(s1, s2), 0.0, 1e-12);
}

TEST(SegmentSegmentDistance, ParallelSegments) {
  const Segment<2> s1{{0, 0}, {10, 0}};
  const Segment<2> s2{{0, 4}, {10, 4}};
  EXPECT_DOUBLE_EQ(Dist(s1, s2), 4.0);
  // Offset parallel: closest between endpoints.
  const Segment<2> s3{{20, 3}, {30, 3}};
  EXPECT_DOUBLE_EQ(Dist(s1, s3), std::sqrt(100.0 + 9.0));
}

TEST(SegmentSegmentDistance, CollinearTouching) {
  const Segment<2> s1{{0, 0}, {5, 0}};
  const Segment<2> s2{{5, 0}, {9, 0}};
  EXPECT_DOUBLE_EQ(Dist(s1, s2), 0.0);
  const Segment<2> s3{{7, 0}, {9, 0}};
  EXPECT_DOUBLE_EQ(Dist(s1, s3), 2.0);
}

TEST(SegmentSegmentDistance, Skew3D) {
  // Classic skew lines: x-axis and a line along y at z=2 — distance 2.
  const Segment<3> s1{{-5, 0, 0}, {5, 0, 0}};
  const Segment<3> s2{{0, -5, 2}, {0, 5, 2}};
  EXPECT_DOUBLE_EQ(Dist(s1, s2), 2.0);
}

TEST(SegmentSegmentDistance, DegenerateBothSides) {
  const Segment<2> p1{{1, 1}, {1, 1}};
  const Segment<2> p2{{4, 5}, {4, 5}};
  EXPECT_DOUBLE_EQ(Dist(p1, p2), 5.0);
  const Segment<2> s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(Dist(p1, s), 1.0);
  EXPECT_DOUBLE_EQ(Dist(s, p1), 1.0);
}

Segment<2> RandomSegment(Rng& rng, double span, double max_len) {
  const double x = rng.Uniform(0, span);
  const double y = rng.Uniform(0, span);
  return {{x, y},
          {x + rng.Uniform(-max_len, max_len),
           y + rng.Uniform(-max_len, max_len)}};
}

double SampledSegmentDistance(const Segment<2>& s1, const Segment<2>& s2,
                              int samples) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i <= samples; ++i) {
    const double t1 = static_cast<double>(i) / samples;
    Point<2> p1{s1.a[0] + t1 * (s1.b[0] - s1.a[0]),
                s1.a[1] + t1 * (s1.b[1] - s1.a[1])};
    for (int j = 0; j <= samples; ++j) {
      const double t2 = static_cast<double>(j) / samples;
      Point<2> p2{s2.a[0] + t2 * (s2.b[0] - s2.a[0]),
                  s2.a[1] + t2 * (s2.b[1] - s2.a[1])};
      best = std::min(best, Dist(p1, p2));
    }
  }
  return best;
}

TEST(SegmentSegmentDistance, PropertyAgainstDenseSampling) {
  Rng rng(661);
  for (int trial = 0; trial < 200; ++trial) {
    const Segment<2> s1 = RandomSegment(rng, 100, 30);
    const Segment<2> s2 = RandomSegment(rng, 100, 30);
    const double exact = Dist(s1, s2);
    const double sampled = SampledSegmentDistance(s1, s2, 60);
    // The exact distance is a lower bound of any sampling and close to a
    // dense one.
    ASSERT_LE(exact, sampled + 1e-9) << trial;
    ASSERT_GE(exact, sampled - 1.2) << trial;  // sampling granularity slack
    // And it is bounded by the MBR-based MINDIST from below.
    ASSERT_GE(exact, MinDist(s1.Mbr(), s2.Mbr()) - 1e-9) << trial;
  }
}

// --- line-data distance join via obr mode ---

std::vector<Segment<2>> RandomSegments(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Segment<2>> segments;
  for (size_t i = 0; i < n; ++i) {
    segments.push_back(RandomSegment(rng, 1000, 60));
  }
  return segments;
}

RTree<2> IndexSegments(const std::vector<Segment<2>>& segments) {
  RTreeOptions options;
  options.page_size = 512;
  RTree<2> tree(options);
  std::vector<RTree<2>::Entry> entries;
  for (size_t i = 0; i < segments.size(); ++i) {
    entries.push_back({segments[i].Mbr(), i});
  }
  tree.BulkLoad(std::move(entries));
  return tree;
}

TEST(SegmentJoin, ObrModeMatchesBruteForce) {
  const auto roads = RandomSegments(150, 662);
  const auto rivers = RandomSegments(150, 663);
  RTree<2> tr = IndexSegments(roads);
  RTree<2> tv = IndexSegments(rivers);

  DistanceJoinOptions options;
  options.exact_object_distance = [&roads, &rivers](ObjectId i, ObjectId j) {
    return Dist(roads[i], rivers[j]);
  };
  DistanceJoin<2> join(tr, tv, options);

  // Brute-force reference ordering of exact segment distances.
  std::vector<double> reference;
  for (const auto& r : roads) {
    for (const auto& v : rivers) reference.push_back(Dist(r, v));
  }
  std::sort(reference.begin(), reference.end());

  JoinResult<2> pair;
  for (size_t k = 0; k < 400; ++k) {
    ASSERT_TRUE(join.Next(&pair)) << k;
    ASSERT_NEAR(pair.distance, reference[k], 1e-9) << k;
    ASSERT_NEAR(pair.distance, Dist(roads[pair.id1], rivers[pair.id2]), 1e-9);
  }
}

TEST(SegmentJoin, SemiJoinNearestRiverPerRoad) {
  const auto roads = RandomSegments(100, 664);
  const auto rivers = RandomSegments(120, 665);
  RTree<2> tr = IndexSegments(roads);
  RTree<2> tv = IndexSegments(rivers);

  SemiJoinOptions options;
  options.bound = SemiJoinBound::kGlobalAll;
  options.join.exact_object_distance =
      [&roads, &rivers](ObjectId i, ObjectId j) {
        return Dist(roads[i], rivers[j]);
      };
  DistanceSemiJoin<2> semi(tr, tv, options);
  JoinResult<2> pair;
  size_t count = 0;
  while (semi.Next(&pair)) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& v : rivers) {
      best = std::min(best, Dist(roads[pair.id1], v));
    }
    ASSERT_NEAR(pair.distance, best, 1e-9) << pair.id1;
    ++count;
  }
  EXPECT_EQ(count, roads.size());
}

TEST(SegmentJoin, IntersectingSegmentsSurfaceFirst) {
  // Two deliberately crossing segments must appear as the first pair with
  // distance 0.
  std::vector<Segment<2>> a = {{{0, 0}, {100, 100}}, {{500, 0}, {600, 0}}};
  std::vector<Segment<2>> b = {{{0, 100}, {100, 0}}, {{800, 800}, {900, 900}}};
  RTree<2> ta = IndexSegments(a);
  RTree<2> tb = IndexSegments(b);
  DistanceJoinOptions options;
  options.exact_object_distance = [&a, &b](ObjectId i, ObjectId j) {
    return Dist(a[i], b[j]);
  };
  DistanceJoin<2> join(ta, tb, options);
  JoinResult<2> pair;
  ASSERT_TRUE(join.Next(&pair));
  EXPECT_EQ(pair.id1, 0u);
  EXPECT_EQ(pair.id2, 0u);
  EXPECT_NEAR(pair.distance, 0.0, 1e-12);
}

}  // namespace
}  // namespace sdj
